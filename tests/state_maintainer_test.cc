#include "engine/state_maintainer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

/// Drives a StateMaintainer directly, recording closed windows.
class Harness {
 public:
  explicit Harness(const std::string& query) {
    aq_ = CompileSaql(query).value();
    sm_ = std::make_unique<StateMaintainer>(aq_);
    Status st = sm_->Init();
    EXPECT_TRUE(st.ok()) << st;
    sm_->SetCloseCallback(
        [this](const TimeWindow& w,
               std::vector<StateMaintainer::ClosedGroup>& groups) {
          for (auto& g : groups) {
            closed_.push_back({w, g.group_key, g.state.fields});
          }
        });
  }

  void Add(const Event& e) {
    PatternMatch m;
    m.events.push_back(e);
    m.first_ts = m.last_ts = e.ts;
    sm_->AddMatch(m);
  }

  struct Closed {
    TimeWindow window;
    std::string group;
    std::vector<Value> fields;
  };

  StateMaintainer* operator->() { return sm_.get(); }
  const std::vector<Closed>& closed() const { return closed_; }

 private:
  AnalyzedQueryPtr aq_;
  std::unique_ptr<StateMaintainer> sm_;
  std::vector<Closed> closed_;
};

Event NetWrite(const std::string& exe, int64_t amount, Timestamp ts) {
  return EventBuilder()
      .At(ts)
      .OnHost("h1")
      .Subject(exe, 100)
      .Op(EventOp::kWrite)
      .NetObject("1.2.3.4")
      .Amount(amount)
      .Build();
}

const char* kSumQuery =
    "proc p write ip i as e #time(1 min) "
    "state ss { amt := sum(e.amount) } group by p "
    "alert ss.amt > 0 return p, ss.amt";

TEST(StateMaintainerTest, AggregatesPerGroupPerWindow) {
  Harness h(kSumQuery);
  h.Add(NetWrite("a.exe", 5, kSecond));
  h.Add(NetWrite("a.exe", 7, 2 * kSecond));
  h.Add(NetWrite("b.exe", 11, 3 * kSecond));
  h->AdvanceWatermark(kMinute);
  ASSERT_EQ(h.closed().size(), 2u);
  // Groups are delivered in deterministic (sorted) order.
  EXPECT_EQ(h.closed()[0].group, "a.exe");
  EXPECT_EQ(h.closed()[0].fields[0].AsInt(), 12);
  EXPECT_EQ(h.closed()[1].group, "b.exe");
  EXPECT_EQ(h.closed()[1].fields[0].AsInt(), 11);
}

TEST(StateMaintainerTest, WatermarkClosesOnlyElapsedWindows) {
  Harness h(kSumQuery);
  h.Add(NetWrite("a.exe", 1, kSecond));           // window [0, 60s)
  h.Add(NetWrite("a.exe", 2, 61 * kSecond));      // window [60s, 120s)
  h->AdvanceWatermark(70 * kSecond);
  ASSERT_EQ(h.closed().size(), 1u);
  EXPECT_EQ(h.closed()[0].window.start, 0);
  h->AdvanceWatermark(120 * kSecond);
  EXPECT_EQ(h.closed().size(), 2u);
}

TEST(StateMaintainerTest, FinishClosesEverything) {
  Harness h(kSumQuery);
  h.Add(NetWrite("a.exe", 1, kSecond));
  h.Add(NetWrite("a.exe", 2, 61 * kSecond));
  h->Finish();
  EXPECT_EQ(h.closed().size(), 2u);
  EXPECT_EQ(h->stats().windows_closed, 2u);
  EXPECT_EQ(h->stats().groups_closed, 2u);
}

TEST(StateMaintainerTest, EmptyWindowsProduceNothing) {
  Harness h(kSumQuery);
  h.Add(NetWrite("a.exe", 1, kSecond));
  // Minutes 1..4 have no events: no synthetic empty states.
  h.Add(NetWrite("a.exe", 2, 5 * kMinute + kSecond));
  h->Finish();
  EXPECT_EQ(h.closed().size(), 2u);
}

TEST(StateMaintainerTest, SlidingWindowFoldsIntoAllAssigned) {
  Harness h(
      "proc p write ip i as e #time(1 min, 30 s) "
      "state ss { c := count() } group by p "
      "alert ss.c > 0 return p, ss.c");
  h.Add(NetWrite("a.exe", 1, 45 * kSecond));  // in [0,60) and [30,90)
  h->Finish();
  ASSERT_EQ(h.closed().size(), 2u);
  EXPECT_EQ(h.closed()[0].fields[0].AsInt(), 1);
  EXPECT_EQ(h.closed()[1].fields[0].AsInt(), 1);
  EXPECT_EQ(h.closed()[0].window.start, 0);
  EXPECT_EQ(h.closed()[1].window.start, 30 * kSecond);
}

TEST(StateMaintainerTest, CountWindowsClosePerGroupIndependently) {
  Harness h(
      "proc p write ip i as e #count(2) "
      "state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 0 return p, ss.amt");
  h.Add(NetWrite("a.exe", 1, kSecond));
  h.Add(NetWrite("b.exe", 10, 2 * kSecond));
  EXPECT_TRUE(h.closed().empty());  // each group has only 1 match
  h.Add(NetWrite("a.exe", 2, 3 * kSecond));  // a.exe reaches 2
  ASSERT_EQ(h.closed().size(), 1u);
  EXPECT_EQ(h.closed()[0].group, "a.exe");
  EXPECT_EQ(h.closed()[0].fields[0].AsInt(), 3);
  h->Finish();  // flushes b.exe's partial window
  ASSERT_EQ(h.closed().size(), 2u);
  EXPECT_EQ(h.closed()[1].group, "b.exe");
}

TEST(StateMaintainerTest, CountWindowRestartsAfterClose) {
  Harness h(
      "proc p write ip i as e #count(2) "
      "state ss { c := count() } group by p "
      "alert ss.c > 0 return p, ss.c");
  for (int i = 0; i < 6; ++i) {
    h.Add(NetWrite("a.exe", 1, (i + 1) * kSecond));
  }
  EXPECT_EQ(h.closed().size(), 3u);
  for (const auto& c : h.closed()) {
    EXPECT_EQ(c.fields[0].AsInt(), 2);
  }
}

TEST(StateMaintainerTest, MultiFieldState) {
  Harness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) c := count() m := max(e.amount) } "
      "group by p "
      "alert ss.c > 0 return p, ss.amt, ss.c, ss.m");
  h.Add(NetWrite("a.exe", 5, kSecond));
  h.Add(NetWrite("a.exe", 9, 2 * kSecond));
  h->Finish();
  ASSERT_EQ(h.closed().size(), 1u);
  const auto& fields = h.closed()[0].fields;
  EXPECT_EQ(fields[0].AsInt(), 14);
  EXPECT_EQ(fields[1].AsInt(), 2);
  EXPECT_EQ(fields[2].AsInt(), 9);
}

TEST(StateMaintainerTest, ArithmeticAroundAggregates) {
  Harness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { kb := sum(e.amount) / 1024 + 1 } group by p "
      "alert ss.kb > 0 return p, ss.kb");
  h.Add(NetWrite("a.exe", 2048, kSecond));
  h->Finish();
  ASSERT_EQ(h.closed().size(), 1u);
  EXPECT_DOUBLE_EQ(h.closed()[0].fields[0].AsFloat(), 3.0);
}

TEST(StateMaintainerTest, StatsTrackPeakCells) {
  Harness h(kSumQuery);
  for (int g = 0; g < 5; ++g) {
    h.Add(NetWrite("p" + std::to_string(g) + ".exe", 1, kSecond));
  }
  EXPECT_EQ(h->stats().peak_open_cells, 5u);
  EXPECT_EQ(h->stats().matches_in, 5u);
  h->Finish();
  EXPECT_EQ(h->stats().groups_closed, 5u);
}

TEST(StateMaintainerTest, InitRejectsStatelessQuery) {
  AnalyzedQueryPtr aq =
      CompileSaql("proc p read file f as e return p").value();
  StateMaintainer sm(aq);
  EXPECT_FALSE(sm.Init().ok());
}

}  // namespace
}  // namespace saql
