#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "collect/apt_scenario.h"
#include "collect/benign_workload.h"
#include "collect/enterprise_sim.h"
#include "collect/entity_factory.h"

namespace saql {
namespace {

TEST(EntityFactoryTest, StablePidsPerExecutable) {
  EntityFactory f(HostProfile{"h1", HostRole::kDatabaseServer, "10.0.0.9"},
                  7);
  ProcessEntity a = f.ProcessByName("sqlservr.exe");
  ProcessEntity b = f.ProcessByName("sqlservr.exe");
  EXPECT_EQ(a.pid, b.pid);
  ProcessEntity c = f.ProcessByName("cmd.exe");
  EXPECT_NE(a.pid, c.pid);
}

TEST(EntityFactoryTest, RoleExecutablesMatchRole) {
  EntityFactory db(HostProfile{"db", HostRole::kDatabaseServer, "1.1.1.1"},
                   1);
  EntityFactory web(HostProfile{"web", HostRole::kWebServer, "1.1.1.2"}, 1);
  auto has = [](const std::vector<std::string>& v, const std::string& s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };
  EXPECT_TRUE(has(db.role_executables(), "sqlservr.exe"));
  EXPECT_TRUE(has(web.role_executables(), "apache.exe"));
  EXPECT_FALSE(has(web.role_executables(), "sqlservr.exe"));
}

TEST(EntityFactoryTest, PeersComeFromStablePool) {
  EntityFactory f(HostProfile{"h", HostRole::kWorkstation, "10.10.1.10"},
                  11);
  std::mt19937_64 rng(3);
  std::set<std::string> ips;
  for (int i = 0; i < 200; ++i) {
    ips.insert(f.RandomPeer(&rng).dst_ip);
  }
  // Bounded peer pool (12 intranet + 8 internet).
  EXPECT_LE(ips.size(), 20u);
  EXPECT_GE(ips.size(), 5u);
}

TEST(MakeEnterpriseHostsTest, TopologyMatchesPaperDemo) {
  auto hosts = MakeEnterpriseHosts(3);
  ASSERT_EQ(hosts.size(), 7u);  // 3 workstations + 4 servers
  int servers = 0;
  for (const HostProfile& h : hosts) {
    if (h.role != HostRole::kWorkstation) ++servers;
  }
  EXPECT_EQ(servers, 4);
}

TEST(BenignWorkloadTest, EventsAreOrderedAndInRange) {
  BenignWorkload w(HostProfile{"h1", HostRole::kWorkstation, "10.10.1.10"},
                   5);
  EventBatch out;
  Timestamp start = 1000 * kSecond;
  w.Generate(start, kMinute, &out);
  ASSERT_GT(out.size(), 100u);  // ~20/s for 60s
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i].ts, start);
    EXPECT_LT(out[i].ts, start + kMinute);
    if (i > 0) {
      EXPECT_LE(out[i - 1].ts, out[i].ts);
    }
    EXPECT_EQ(out[i].agent_id, "h1");
  }
}

TEST(BenignWorkloadTest, DeterministicForFixedSeed) {
  HostProfile p{"h1", HostRole::kWorkstation, "10.10.1.10"};
  EventBatch a, b;
  BenignWorkload(p, 99).Generate(0, 10 * kSecond, &a);
  BenignWorkload(p, 99).Generate(0, 10 * kSecond, &b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].subject.exe_name, b[i].subject.exe_name);
  }
}

TEST(BenignWorkloadTest, WebServerSpawnsApacheWorkers) {
  BenignWorkload w(HostProfile{"web", HostRole::kWebServer, "10.10.0.7"},
                   5);
  EventBatch out;
  w.Generate(0, 5 * kMinute, &out);
  std::set<std::string> apache_children;
  for (const Event& e : out) {
    if (e.op == EventOp::kStart && e.subject.exe_name == "apache.exe") {
      apache_children.insert(e.obj_proc.exe_name);
    }
  }
  // Exactly the benign worker set — the invariant Query 3 learns.
  EXPECT_EQ(apache_children, (std::set<std::string>{"php.exe",
                                                    "logger.exe"}));
}

TEST(AptScenarioTest, FiveStepsInOrder) {
  auto steps = GenerateAptScenario(AptScenarioConfig{});
  ASSERT_EQ(steps.size(), 5u);
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].step, static_cast<int>(i + 1));
    EXPECT_FALSE(steps[i].events.empty());
    EXPECT_FALSE(steps[i].description.empty());
  }
  EventBatch flat = FlattenAptScenario(steps);
  for (size_t i = 1; i < flat.size(); ++i) {
    EXPECT_LE(flat[i - 1].ts, flat[i].ts);
  }
}

TEST(AptScenarioTest, Step5ContainsQuery1Sequence) {
  AptScenarioConfig cfg;
  auto steps = GenerateAptScenario(cfg);
  const EventBatch& c5 = steps[4].events;
  bool cmd_starts_osql = false, sqlservr_writes_dump = false,
       malware_reads_dump = false, malware_exfil = false;
  for (const Event& e : c5) {
    if (e.op == EventOp::kStart && e.subject.exe_name == "cmd.exe" &&
        e.obj_proc.exe_name == "osql.exe") {
      cmd_starts_osql = true;
    }
    if (e.op == EventOp::kWrite && e.subject.exe_name == "sqlservr.exe" &&
        IsFileEvent(e) &&
        e.obj_file.path.find("backup1.dmp") != std::string::npos) {
      sqlservr_writes_dump = true;
    }
    if (e.op == EventOp::kRead && e.subject.exe_name == "sbblv.exe" &&
        IsFileEvent(e)) {
      malware_reads_dump = true;
    }
    if (e.op == EventOp::kWrite && e.subject.exe_name == "sbblv.exe" &&
        IsNetworkEvent(e) && e.obj_net.dst_ip == cfg.attacker_ip) {
      malware_exfil = true;
    }
  }
  EXPECT_TRUE(cmd_starts_osql);
  EXPECT_TRUE(sqlservr_writes_dump);
  EXPECT_TRUE(malware_reads_dump);
  EXPECT_TRUE(malware_exfil);
}

TEST(AptScenarioTest, ExfilVolumeMatchesConfig) {
  AptScenarioConfig cfg;
  cfg.dump_bytes = 10'000'000;
  cfg.exfil_chunks = 10;
  auto steps = GenerateAptScenario(cfg);
  // Both the malware's copy and sqlservr's client-connection stream carry
  // the full dump volume.
  int64_t malware_total = 0, sqlservr_total = 0;
  for (const Event& e : steps[4].events) {
    if (IsNetworkEvent(e) && e.obj_net.dst_ip == cfg.attacker_ip &&
        e.op == EventOp::kWrite) {
      if (e.subject.exe_name == "sbblv.exe") malware_total += e.amount;
      if (e.subject.exe_name == "sqlservr.exe") sqlservr_total += e.amount;
    }
  }
  EXPECT_EQ(malware_total, cfg.dump_bytes);
  EXPECT_EQ(sqlservr_total, cfg.dump_bytes);
}

TEST(AptScenarioTest, PortScanHitsConfiguredCount) {
  AptScenarioConfig cfg;
  cfg.scan_ports = 17;
  auto steps = GenerateAptScenario(cfg);
  int connects_to_db = 0;
  for (const Event& e : steps[2].events) {
    if (e.op == EventOp::kConnect && IsNetworkEvent(e) &&
        e.obj_net.dst_ip == cfg.db_ip) {
      ++connects_to_db;
    }
  }
  EXPECT_EQ(connects_to_db, cfg.scan_ports + 1);  // scan + the 1433 hit
}

TEST(EnterpriseSimTest, GeneratesOrderedStreamWithIds) {
  EnterpriseSimulator::Options opts;
  opts.num_workstations = 2;
  opts.duration = 2 * kMinute;
  opts.events_per_host_per_second = 5;
  EnterpriseSimulator sim(opts);
  EventBatch events = sim.Generate();
  ASSERT_GT(events.size(), 500u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 1);
    if (i > 0) EXPECT_LE(events[i - 1].ts, events[i].ts);
  }
}

TEST(EnterpriseSimTest, AttackInjectedAtOffset) {
  EnterpriseSimulator::Options opts;
  opts.num_workstations = 1;
  opts.duration = 20 * kMinute;
  opts.attack_offset = 5 * kMinute;
  opts.events_per_host_per_second = 2;
  EnterpriseSimulator sim(opts);
  EventBatch events = sim.Generate();
  ASSERT_EQ(sim.attack_steps().size(), 5u);
  // Find the first attack artifact (outlook recv from attacker IP).
  bool found = false;
  for (const Event& e : events) {
    if (IsNetworkEvent(e) &&
        e.obj_net.dst_ip == opts.attack.attacker_ip) {
      EXPECT_GE(e.ts, opts.start + opts.attack_offset);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnterpriseSimTest, AttackCanBeDisabled) {
  EnterpriseSimulator::Options opts;
  opts.include_attack = false;
  opts.duration = kMinute;
  opts.num_workstations = 1;
  EnterpriseSimulator sim(opts);
  EventBatch events = sim.Generate();
  EXPECT_TRUE(sim.attack_steps().empty());
  for (const Event& e : events) {
    EXPECT_NE(e.subject.exe_name, "sbblv.exe");
  }
}

}  // namespace
}  // namespace saql
