#include "engine/engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

/// Runs `query` over `events` and returns the alerts.
std::vector<Alert> RunQuery(const std::string& query, EventBatch events,
                            SaqlEngine::Options options = {}) {
  SaqlEngine engine(options);
  Status st = engine.AddQuery(query, "q");
  EXPECT_TRUE(st.ok()) << st;
  VectorEventSource source(std::move(events));
  st = engine.Run(&source);
  EXPECT_TRUE(st.ok()) << st;
  return engine.alerts();
}

Event NetWrite(const std::string& exe, const std::string& dst,
               int64_t amount, Timestamp ts, const std::string& host = "h1",
               int64_t pid = 100) {
  return EventBuilder()
      .At(ts)
      .OnHost(host)
      .Subject(exe, pid)
      .Op(EventOp::kWrite)
      .NetObject(dst)
      .Amount(amount)
      .Build();
}

Event ProcStart(const std::string& parent, const std::string& child,
                Timestamp ts, const std::string& host = "h1") {
  return EventBuilder()
      .At(ts)
      .OnHost(host)
      .Subject(parent, 50)
      .Op(EventOp::kStart)
      .ProcObject(child, 60)
      .Build();
}

// ---------------------------------------------------------------------------
// Rule-based queries.
// ---------------------------------------------------------------------------

TEST(RuleQueryTest, SinglePatternAlertsOnEveryMatch) {
  EventBatch events;
  for (int i = 0; i < 3; ++i) {
    events.push_back(NetWrite("malware.exe", "6.6.6.6", 100, i * kSecond));
  }
  events.push_back(NetWrite("chrome.exe", "8.8.8.8", 100, 10 * kSecond));
  auto alerts = RunQuery(
      "proc p[\"%malware.exe\"] write ip i as e return p, i", events);
  ASSERT_EQ(alerts.size(), 3u);
  EXPECT_EQ(alerts[0].values[0].second.AsString(), "malware.exe");
  EXPECT_EQ(alerts[0].values[1].second.AsString(), "6.6.6.6");
}

TEST(RuleQueryTest, DistinctSuppressesDuplicates) {
  EventBatch events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(NetWrite("malware.exe", "6.6.6.6", 100, i * kSecond));
  }
  auto alerts = RunQuery(
      "proc p[\"%malware.exe\"] write ip i as e return distinct p, i",
      events);
  EXPECT_EQ(alerts.size(), 1u);
}

TEST(RuleQueryTest, AlertConditionFilters) {
  EventBatch events;
  events.push_back(NetWrite("app.exe", "1.1.1.1", 100, kSecond));
  events.push_back(NetWrite("app.exe", "1.1.1.1", 9999999, 2 * kSecond));
  auto alerts = RunQuery(
      "proc p write ip i as e alert e.amount > 1000000 return p, e.amount",
      events);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].values[1].second.AsInt(), 9999999);
}

TEST(RuleQueryTest, GlobalConstraintRestrictsHost) {
  EventBatch events;
  events.push_back(NetWrite("x.exe", "1.1.1.1", 10, kSecond, "host-a"));
  events.push_back(NetWrite("x.exe", "1.1.1.1", 10, 2 * kSecond, "host-b"));
  auto alerts = RunQuery(
      "agentid = \"host-a\" proc p write ip i as e return p", events);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].ts, kSecond);
}

TEST(RuleQueryTest, MultiPatternSequenceAlert) {
  EventBatch events;
  events.push_back(ProcStart("cmd.exe", "osql.exe", 100));
  events.push_back(EventBuilder()
                       .At(200)
                       .OnHost("h1")
                       .Subject("sqlservr.exe", 70)
                       .Op(EventOp::kWrite)
                       .FileObject("/backup1.dmp")
                       .Amount(5000000)
                       .Build());
  auto alerts = RunQuery(
      "proc a[\"%cmd.exe\"] start proc b[\"%osql.exe\"] as e1 "
      "proc c[\"%sqlservr.exe\"] write file f as e2 "
      "with e1 -> e2 "
      "return a, b, f",
      events);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].values[2].second.AsString(), "/backup1.dmp");
  EXPECT_EQ(alerts[0].ts, 200);
}

// ---------------------------------------------------------------------------
// Time-series (state) queries.
// ---------------------------------------------------------------------------

TEST(TimeSeriesQueryTest, Query2SpikeDetection) {
  // 3 calm windows then a spike window for backup.exe; chrome stays calm.
  EventBatch events;
  Timestamp t0 = 0;
  for (int w = 0; w < 4; ++w) {
    Timestamp base = t0 + w * 10 * kMinute;
    int64_t backup_amount = (w == 3) ? 900000 : 5000;
    for (int i = 0; i < 6; ++i) {
      events.push_back(NetWrite("backup.exe", "10.0.0.2", backup_amount,
                                base + i * kMinute, "h1", 100));
      events.push_back(NetWrite("chrome.exe", "8.8.8.8", 4000,
                                base + i * kMinute + kSecond, "h1", 101));
    }
  }
  // Closing event so the last window's end passes the watermark.
  events.push_back(NetWrite("idle.exe", "9.9.9.9", 1, 41 * kMinute));

  auto alerts = RunQuery(testing::ReadQueryFile("query2_timeseries.saql"),
                         events);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].group, "backup.exe");
  EXPECT_DOUBLE_EQ(alerts[0].values[1].second.AsFloat(), 900000.0);
  ASSERT_TRUE(alerts[0].window.has_value());
  EXPECT_EQ(alerts[0].window->start, 30 * kMinute);
}

TEST(TimeSeriesQueryTest, NoAlertWithoutSpike) {
  EventBatch events;
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 6; ++i) {
      events.push_back(NetWrite("steady.exe", "10.0.0.2", 50000,
                                w * 10 * kMinute + i * kMinute));
    }
  }
  events.push_back(NetWrite("idle.exe", "9.9.9.9", 1, 51 * kMinute));
  auto alerts = RunQuery(testing::ReadQueryFile("query2_timeseries.saql"),
                         events);
  EXPECT_TRUE(alerts.empty());
}

TEST(TimeSeriesQueryTest, StateHistoryValuesExposed) {
  EventBatch events;
  for (int w = 0; w < 3; ++w) {
    events.push_back(NetWrite("app.exe", "1.1.1.1", (w + 1) * 1000,
                              w * kMinute + kSecond));
  }
  events.push_back(NetWrite("idle.exe", "9.9.9.9", 1, 4 * kMinute));
  auto alerts = RunQuery(
      "proc p write ip i as e #time(1 min) "
      "state[3] ss { amt := avg(e.amount) } group by p "
      "alert ss[0].amt > 0 "
      "return p, ss[0].amt, ss[1].amt, ss[2].amt",
      events);
  // app.exe closes 3 windows; the third has full history.
  std::vector<Alert> app_alerts;
  for (const Alert& a : alerts) {
    if (a.group == "app.exe") app_alerts.push_back(a);
  }
  ASSERT_EQ(app_alerts.size(), 3u);
  const Alert& third = app_alerts[2];
  EXPECT_DOUBLE_EQ(third.values[1].second.AsFloat(), 3000.0);  // ss[0]
  EXPECT_DOUBLE_EQ(third.values[2].second.AsFloat(), 2000.0);  // ss[1]
  EXPECT_DOUBLE_EQ(third.values[3].second.AsFloat(), 1000.0);  // ss[2]
}

TEST(TimeSeriesQueryTest, CountWindowClosesPerGroup) {
  EventBatch events;
  for (int i = 0; i < 7; ++i) {
    events.push_back(NetWrite("a.exe", "1.1.1.1", 10, i * kSecond));
  }
  auto alerts = RunQuery(
      "proc p write ip i as e #count(3) "
      "state ss { c := count() } group by p "
      "alert ss.c >= 3 return p, ss.c",
      events);
  // 7 events -> two full count-3 windows + a partial (1 event) flushed at
  // finish which fails the alert.
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].values[1].second.AsInt(), 3);
}

// ---------------------------------------------------------------------------
// Invariant queries.
// ---------------------------------------------------------------------------

TEST(InvariantQueryTest, Query3DetectsUnseenChild) {
  EventBatch events;
  // 10 training windows of apache spawning php/logger every 10 seconds.
  for (int w = 0; w < 12; ++w) {
    Timestamp base = w * 10 * kSecond;
    events.push_back(
        ProcStart("apache.exe", w % 2 == 0 ? "php.exe" : "logger.exe",
                  base + kSecond, "web-1"));
    events.push_back(ProcStart("apache.exe", "php.exe", base + 5 * kSecond,
                               "web-1"));
  }
  // Window 12 (post-training): the backdoor child appears.
  events.push_back(
      ProcStart("apache.exe", "sbblv.exe", 12 * 10 * kSecond + kSecond,
                "web-1"));
  events.push_back(ProcStart("apache.exe", "php.exe",
                             13 * 10 * kSecond + kSecond, "web-1"));

  auto alerts = RunQuery(testing::ReadQueryFile("query3_invariant.saql"),
                         events);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].group, "apache.exe");
  const Value& set = alerts[0].values[1].second;
  EXPECT_TRUE(set.AsSet().count("sbblv.exe"));
}

TEST(InvariantQueryTest, NoAlertDuringTraining) {
  EventBatch events;
  // Only 5 of the 10 training windows contain data; every child is new but
  // training suppresses alerts.
  for (int w = 0; w < 5; ++w) {
    events.push_back(ProcStart("apache.exe", "child" + std::to_string(w),
                               w * 10 * kSecond + kSecond, "web-1"));
  }
  auto alerts = RunQuery(testing::ReadQueryFile("query3_invariant.saql"),
                         events);
  EXPECT_TRUE(alerts.empty());
}

TEST(InvariantQueryTest, OfflineKeepsAlertingOnRepeatedViolation) {
  std::string q =
      "proc p1[\"%apache.exe\"] start proc p2 as evt #time(10 s) "
      "state ss { set_proc := set(p2.exe_name) } group by p1 "
      "invariant[2][offline] { a := empty_set a = a union ss.set_proc } "
      "alert |ss.set_proc diff a| > 0 "
      "return p1, ss.set_proc";
  EventBatch events;
  events.push_back(ProcStart("apache.exe", "php.exe", 1 * kSecond));
  events.push_back(ProcStart("apache.exe", "php.exe", 11 * kSecond));
  events.push_back(ProcStart("apache.exe", "evil.exe", 21 * kSecond));
  events.push_back(ProcStart("apache.exe", "evil.exe", 31 * kSecond));
  auto alerts = RunQuery(q, events);
  EXPECT_EQ(alerts.size(), 2u);  // offline: every violating window alerts
}

TEST(InvariantQueryTest, OnlineAbsorbsViolation) {
  std::string q =
      "proc p1[\"%apache.exe\"] start proc p2 as evt #time(10 s) "
      "state ss { set_proc := set(p2.exe_name) } group by p1 "
      "invariant[2][online] { a := empty_set a = a union ss.set_proc } "
      "alert |ss.set_proc diff a| > 0 "
      "return p1, ss.set_proc";
  EventBatch events;
  events.push_back(ProcStart("apache.exe", "php.exe", 1 * kSecond));
  events.push_back(ProcStart("apache.exe", "php.exe", 11 * kSecond));
  events.push_back(ProcStart("apache.exe", "evil.exe", 21 * kSecond));
  events.push_back(ProcStart("apache.exe", "evil.exe", 31 * kSecond));
  auto alerts = RunQuery(q, events);
  EXPECT_EQ(alerts.size(), 1u);  // online: learned after first alert
}

// ---------------------------------------------------------------------------
// Outlier (cluster) queries.
// ---------------------------------------------------------------------------

TEST(OutlierQueryTest, Query4FlagsExfiltrationIp) {
  EventBatch events;
  Timestamp base = 0;
  // Six peer IPs with similar volumes, one IP receiving the dump.
  for (int i = 0; i < 6; ++i) {
    std::string ip = "10.0.0." + std::to_string(10 + i);
    for (int k = 0; k < 5; ++k) {
      events.push_back(NetWrite("sqlservr.exe", ip, 100000,
                                base + k * kMinute + i * kSecond,
                                "db-server-01"));
    }
  }
  for (int k = 0; k < 5; ++k) {
    events.push_back(NetWrite("sqlservr.exe", "66.77.88.129", 10000000,
                              base + k * kMinute + 30 * kSecond,
                              "db-server-01"));
  }
  events.push_back(NetWrite("idle.exe", "9.9.9.9", 1, 11 * kMinute,
                            "db-server-01"));
  auto alerts = RunQuery(testing::ReadQueryFile("query4_outlier.saql"),
                         events);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].values[0].second.AsString(), "66.77.88.129");
  EXPECT_EQ(alerts[0].values[1].second.AsInt(), 50000000);
}

TEST(OutlierQueryTest, NoOutlierWhenPeersSimilar) {
  EventBatch events;
  for (int i = 0; i < 8; ++i) {
    std::string ip = "10.0.0." + std::to_string(10 + i);
    events.push_back(NetWrite("sqlservr.exe", ip, 2000000 + i * 10000,
                              i * kSecond, "db-server-01"));
  }
  events.push_back(NetWrite("idle.exe", "9.9.9.9", 1, 11 * kMinute,
                            "db-server-01"));
  auto alerts = RunQuery(testing::ReadQueryFile("query4_outlier.saql"),
                         events);
  EXPECT_TRUE(alerts.empty());
}

TEST(OutlierQueryTest, AmountFloorSuppressesSmallOutliers) {
  // The outlier is far from peers but below the 1MB alert floor.
  EventBatch events;
  for (int i = 0; i < 6; ++i) {
    events.push_back(NetWrite("sqlservr.exe",
                              "10.0.0." + std::to_string(10 + i), 500000,
                              i * kSecond, "db-server-01"));
  }
  events.push_back(NetWrite("sqlservr.exe", "6.6.6.6", 900000,
                            10 * kSecond, "db-server-01"));
  events.push_back(NetWrite("idle.exe", "9.9.9.9", 1, 11 * kMinute,
                            "db-server-01"));
  auto alerts = RunQuery(testing::ReadQueryFile("query4_outlier.saql"),
                         events);
  EXPECT_TRUE(alerts.empty());
}

// ---------------------------------------------------------------------------
// Engine-level behaviour.
// ---------------------------------------------------------------------------

TEST(EngineTest, RejectsInvalidQuery) {
  SaqlEngine engine;
  Status st = engine.AddQuery("this is not saql", "bad");
  EXPECT_FALSE(st.ok());
}

TEST(EngineTest, RejectsDuplicateName) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p read file f as e return p", "q").ok());
  Status st = engine.AddQuery("proc p read file f as e return p", "q");
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(EngineTest, RequiresQueriesBeforeRun) {
  SaqlEngine engine;
  VectorEventSource source(EventBatch{});
  EXPECT_FALSE(engine.Run(&source).ok());
}

TEST(EngineTest, CannotRunTwice) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p read file f as e return p", "q").ok());
  VectorEventSource source(EventBatch{});
  ASSERT_TRUE(engine.Run(&source).ok());
  VectorEventSource source2(EventBatch{});
  EXPECT_FALSE(engine.Run(&source2).ok());
}

TEST(EngineTest, CompatibleQueriesShareOneGroup) {
  SaqlEngine engine;
  ASSERT_TRUE(engine
                  .AddQuery("proc p[\"%a.exe\"] write ip i as e return p",
                            "qa")
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery("proc p[\"%b.exe\"] write ip i as e return p",
                            "qb")
                  .ok());
  EventBatch events;
  events.push_back(NetWrite("a.exe", "1.1.1.1", 10, kSecond));
  VectorEventSource source(std::move(events));
  ASSERT_TRUE(engine.Run(&source).ok());
  EXPECT_EQ(engine.num_queries(), 2u);
  EXPECT_EQ(engine.num_groups(), 1u);
  // One delivery to the group, not one per query.
  EXPECT_EQ(engine.executor_stats().deliveries, 1u);
}

TEST(EngineTest, GroupingDisabledGivesOneGroupPerQuery) {
  SaqlEngine::Options opts;
  opts.enable_grouping = false;
  SaqlEngine engine(opts);
  ASSERT_TRUE(engine
                  .AddQuery("proc p[\"%a.exe\"] write ip i as e return p",
                            "qa")
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery("proc p[\"%b.exe\"] write ip i as e return p",
                            "qb")
                  .ok());
  EventBatch events;
  events.push_back(NetWrite("a.exe", "1.1.1.1", 10, kSecond));
  VectorEventSource source(std::move(events));
  ASSERT_TRUE(engine.Run(&source).ok());
  EXPECT_EQ(engine.num_groups(), 2u);
  EXPECT_EQ(engine.executor_stats().deliveries, 2u);
}

TEST(EngineTest, IncompatibleQueriesSplitGroups) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p write ip i as e return p", "net").ok());
  ASSERT_TRUE(
      engine.AddQuery("proc p read file f as e return p", "file").ok());
  EventBatch events;
  events.push_back(NetWrite("a.exe", "1.1.1.1", 10, kSecond));
  VectorEventSource source(std::move(events));
  ASSERT_TRUE(engine.Run(&source).ok());
  EXPECT_EQ(engine.num_groups(), 2u);
}

TEST(EngineTest, QueryStatsReported) {
  EventBatch events;
  events.push_back(NetWrite("m.exe", "1.1.1.1", 10, kSecond));
  events.push_back(NetWrite("m.exe", "1.1.1.1", 10, 2 * kSecond));
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%m.exe\"] write ip i as e return p, i",
                      "q").ok());
  VectorEventSource source(std::move(events));
  ASSERT_TRUE(engine.Run(&source).ok());
  auto stats = engine.query_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].second.matches, 2u);
  EXPECT_EQ(stats[0].second.alerts, 2u);
}

TEST(EngineTest, CustomAlertSinkReceivesAlerts) {
  EventBatch events;
  events.push_back(NetWrite("m.exe", "1.1.1.1", 10, kSecond));
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p write ip i as e return p", "q").ok());
  int fired = 0;
  engine.SetAlertSink([&](const Alert&) { ++fired; });
  VectorEventSource source(std::move(events));
  ASSERT_TRUE(engine.Run(&source).ok());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.alerts().empty());  // custom sink replaced buffering
}

}  // namespace
}  // namespace saql
