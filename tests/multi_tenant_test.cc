// Multi-tenant workload regression (ROADMAP "more workloads"): 512
// generated queries over few event shapes — the regime the shared
// ConstraintIndex exists for — run end-to-end through `SaqlEngine`. Pins
// alert counts (indexed == brute force, and an absolute count so silent
// matching regressions cannot hide), zero string-keyed field lookups on
// the hot path, and executor stats parity between index on and off.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/field_access.h"
#include "engine/engine.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

// Four structural shapes; every query is `proc p[...] <op> <obj> as e`.
struct TenantShape {
  const char* op_spelling;
  const char* object_decl;
  EventOp op;
  EntityType object_type;
};

constexpr TenantShape kTenantShapes[] = {
    {"write", "ip i", EventOp::kWrite, EntityType::kNetwork},
    {"read", "file f", EventOp::kRead, EntityType::kFile},
    {"write", "file f", EventOp::kWrite, EntityType::kFile},
    {"start", "proc q", EventOp::kStart, EntityType::kProcess},
};

/// 512 tenant queries, 128 per shape. Tenant t watches its own executable
/// (exact interned equality — the probe path); every 4th adds a shared
/// numeric residual, every 8th a shared user equality, so the index also
/// carries residual slots with heavy cross-member sharing.
std::vector<std::string> TenantQueries() {
  std::vector<std::string> out;
  out.reserve(512);
  for (int t = 0; t < 512; ++t) {
    const TenantShape& shape = kTenantShapes[t % 4];
    std::string subj =
        "exe_name = \"tenant" + std::to_string((t / 4) % 80) + ".exe\"";
    if (t % 4 == 1) subj += ", pid > 1000";
    if (t % 8 == 2) subj += ", user = \"svc\"";
    out.push_back("proc p[" + subj + "] " + shape.op_spelling + " " +
                  shape.object_decl + " as e return distinct p");
  }
  return out;
}

/// Deterministic stream over the same few shapes: 6000 events round-robin
/// across shapes, subject executables cycling over 100 tenants (80 watched
/// + 20 noise), about half owned by the shared "svc" user.
EventBatch TenantStream() {
  EventBatch out;
  out.reserve(6000);
  for (int i = 0; i < 6000; ++i) {
    const TenantShape& shape = kTenantShapes[i % 4];
    Event e = EventBuilder()
                  .Id(static_cast<uint64_t>(i + 1))
                  .At(static_cast<Timestamp>(i + 1) * 10 * kMillisecond)
                  .OnHost("edge-" + std::to_string(i % 7))
                  .Subject("tenant" + std::to_string((i * 13) % 100) + ".exe",
                           900 + (i * 7) % 400)
                  .Op(shape.op)
                  .Build();
    e.subject.user = (i % 2 == 0) ? "svc" : "alice";
    e.object_type = shape.object_type;
    switch (shape.object_type) {
      case EntityType::kFile:
        e.obj_file.path = "/srv/data/f" + std::to_string(i % 9);
        break;
      case EntityType::kProcess:
        e.obj_proc.exe_name = "worker.exe";
        e.obj_proc.pid = 4000 + i % 50;
        break;
      case EntityType::kNetwork:
        e.obj_net.dst_ip = "10.1.0." + std::to_string(i % 30 + 1);
        e.obj_net.dst_port = 443;
        e.obj_net.src_ip = "10.1.9.9";
        break;
    }
    e.amount = 512 + i % 2048;
    out.push_back(std::move(e));
  }
  return out;
}

struct TenantRun {
  size_t alerts = 0;
  uint64_t string_keyed_lookups = 0;
  size_t groups = 0;
  size_t indexed_groups = 0;
  ExecutorStats exec;
};

TenantRun RunTenants(bool member_index) {
  SaqlEngine::Options opts;
  opts.enable_member_index = member_index;
  SaqlEngine engine(opts);
  std::vector<std::string> queries = TenantQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    Status st = engine.AddQuery(queries[i], "tenant" + std::to_string(i));
    EXPECT_TRUE(st.ok()) << st;
  }
  VectorEventSource source(TenantStream());
  ResetStringKeyedFieldLookups();
  Status st = engine.Run(&source);
  EXPECT_TRUE(st.ok()) << st;
  TenantRun run;
  run.string_keyed_lookups = StringKeyedFieldLookups();
  run.alerts = engine.alerts().size();
  run.groups = engine.num_groups();
  run.indexed_groups = engine.num_indexed_groups();
  run.exec = engine.executor_stats();
  EXPECT_EQ(engine.errors().ToString(), "(no errors)");
  return run;
}

TEST(MultiTenantTest, FiveTwelveQueriesFewShapesEndToEnd) {
  TenantRun indexed = RunTenants(/*member_index=*/true);
  TenantRun brute = RunTenants(/*member_index=*/false);

  // The compiled hot path never falls back to string-keyed field reads,
  // with or without the index.
  EXPECT_EQ(indexed.string_keyed_lookups, 0u);
  EXPECT_EQ(brute.string_keyed_lookups, 0u);

  // 512 queries collapse into one group per shape; all four are indexed.
  EXPECT_EQ(indexed.groups, 4u);
  EXPECT_EQ(indexed.indexed_groups, 4u);
  EXPECT_EQ(brute.indexed_groups, 0u);

  // Alert-count pin: indexed == brute, and the absolute count is stable
  // for this deterministic workload: each shape's stream carries 25 of
  // the 100 executables (exe index ≡ 13·shape mod 4), 20 of them watched;
  // 12 of those are watched by two tenants and 8 by one (tenants 320–511
  // re-watch exes 0–47), and `return distinct p` caps each matching
  // member at one alert → 4 × (12·2 + 8·1) = 128. If this number moves,
  // member-matching semantics changed — investigate before touching it.
  EXPECT_EQ(indexed.alerts, brute.alerts);
  EXPECT_EQ(indexed.alerts, 128u);

  // Executor accounting identical: same deliveries, same routed skips
  // (the index changes member-side work, never what the executor routes).
  EXPECT_EQ(indexed.exec.events, brute.exec.events);
  EXPECT_EQ(indexed.exec.deliveries, brute.exec.deliveries);
  EXPECT_EQ(indexed.exec.routed_skips, brute.exec.routed_skips);
  EXPECT_EQ(indexed.exec.events, 6000u);
  // Routed-skip parity: deliveries + skips == broadcast to all 4 groups.
  EXPECT_EQ(indexed.exec.deliveries + indexed.exec.routed_skips,
            4 * indexed.exec.events);
}

}  // namespace
}  // namespace saql
