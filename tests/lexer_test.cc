#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

std::vector<Token> MustLex(const std::string& text) {
  Result<std::vector<Token>> r = TokenizeSaql(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEof) {
  std::vector<Token> t = MustLex("");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t[0].Is(TokenKind::kEof));
}

TEST(LexerTest, Identifiers) {
  std::vector<Token> t = MustLex("proc p1 exe_name");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].text, "proc");
  EXPECT_EQ(t[1].text, "p1");
  EXPECT_EQ(t[2].text, "exe_name");
}

TEST(LexerTest, Numbers) {
  std::vector<Token> t = MustLex("10 1.5 1e6 2E-3");
  EXPECT_TRUE(t[0].Is(TokenKind::kInteger));
  EXPECT_EQ(t[0].int_value, 10);
  EXPECT_TRUE(t[1].Is(TokenKind::kFloat));
  EXPECT_DOUBLE_EQ(t[1].float_value, 1.5);
  EXPECT_TRUE(t[2].Is(TokenKind::kFloat));
  EXPECT_DOUBLE_EQ(t[2].float_value, 1e6);
  EXPECT_TRUE(t[3].Is(TokenKind::kFloat));
  EXPECT_DOUBLE_EQ(t[3].float_value, 2e-3);
}

TEST(LexerTest, Strings) {
  std::vector<Token> t = MustLex(R"("%cmd.exe" "a\"b" "tab\there")");
  EXPECT_EQ(t[0].text, "%cmd.exe");
  EXPECT_EQ(t[1].text, "a\"b");
  EXPECT_EQ(t[2].text, "tab\there");
}

TEST(LexerTest, UnterminatedStringFails) {
  Result<std::vector<Token>> r = TokenizeSaql("\"oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OperatorsTwoCharBeforeOneChar) {
  std::vector<Token> t = MustLex("|| | && -> - := = == != <= < >= >");
  std::vector<TokenKind> kinds;
  for (const Token& tok : t) kinds.push_back(tok.kind);
  std::vector<TokenKind> expected{
      TokenKind::kOrOr, TokenKind::kPipe,  TokenKind::kAndAnd,
      TokenKind::kArrow, TokenKind::kMinus, TokenKind::kColonAssign,
      TokenKind::kAssign, TokenKind::kEq,   TokenKind::kNe,
      TokenKind::kLe,    TokenKind::kLt,    TokenKind::kGe,
      TokenKind::kGt,    TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, PunctuationAndHash) {
  std::vector<Token> t = MustLex("#time(10 min)");
  EXPECT_TRUE(t[0].Is(TokenKind::kHash));
  EXPECT_EQ(t[1].text, "time");
  EXPECT_TRUE(t[2].Is(TokenKind::kLParen));
  EXPECT_EQ(t[3].int_value, 10);
  EXPECT_EQ(t[4].text, "min");
  EXPECT_TRUE(t[5].Is(TokenKind::kRParen));
}

TEST(LexerTest, LineCommentsIgnored) {
  std::vector<Token> t = MustLex("a // comment with proc file\nb");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
}

TEST(LexerTest, BlockCommentsIgnored) {
  std::vector<Token> t = MustLex("a /* multi\nline */ b");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(TokenizeSaql("a /* no end").ok());
}

TEST(LexerTest, TracksLineAndColumn) {
  std::vector<Token> t = MustLex("a\n  bb\n    c");
  EXPECT_EQ(t[0].loc.line, 1);
  EXPECT_EQ(t[0].loc.col, 1);
  EXPECT_EQ(t[1].loc.line, 2);
  EXPECT_EQ(t[1].loc.col, 3);
  EXPECT_EQ(t[2].loc.line, 3);
  EXPECT_EQ(t[2].loc.col, 5);
}

TEST(LexerTest, LoneAmpersandFails) {
  Result<std::vector<Token>> r = TokenizeSaql("a & b");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("&&"), std::string::npos);
}

TEST(LexerTest, UnexpectedCharacterReportsPosition) {
  Result<std::vector<Token>> r = TokenizeSaql("a\n@");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:1"), std::string::npos);
}

TEST(LexerTest, IsIdentCaseInsensitive) {
  std::vector<Token> t = MustLex("PROC");
  EXPECT_TRUE(t[0].IsIdent("proc"));
  EXPECT_TRUE(t[0].IsIdent("Proc"));
  EXPECT_FALSE(t[0].IsIdent("file"));
}

TEST(LexerTest, PaperQuery1Tokenizes) {
  const char* q =
      "proc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as evt1\n"
      "with evt1 -> evt2\n"
      "return distinct p1, p2";
  std::vector<Token> t = MustLex(q);
  EXPECT_GT(t.size(), 15u);
  EXPECT_TRUE(t.back().Is(TokenKind::kEof));
}

}  // namespace
}  // namespace saql
