#include "core/status.h"

#include <gtest/gtest.h>

#include "core/result.h"

namespace saql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::ParseError("3:7: bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "3:7: bad token");
  EXPECT_EQ(s.ToString(), "ParseError: 3:7: bad token");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailingStep() { return Status::IoError("disk on fire"); }

Status UsesReturnIfError() {
  SAQL_RETURN_IF_ERROR(FailingStep());
  return Status::Internal("should not reach");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = UsesReturnIfError();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(-1).ValueOr(42), 42);
  EXPECT_EQ(ParsePositive(7).ValueOr(42), 7);
}

TEST(ResultTest, OkStatusConvertedToInternalError) {
  Result<int> r{Status::Ok()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> DoubleOf(int x) {
  SAQL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoubleOf(4).value(), 8);
  EXPECT_FALSE(DoubleOf(-4).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 3);
}

}  // namespace
}  // namespace saql
