#include "engine/multievent_matcher.h"

#include <gtest/gtest.h>

#include "parser/analyzer.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

/// Harness compiling a query's patterns and running events through the
/// matcher.
class MatcherHarness {
 public:
  explicit MatcherHarness(const std::string& query_text,
                          MultieventMatcher::Options options =
                              MultieventMatcher::Options{}) {
    Result<AnalyzedQueryPtr> aq = CompileSaql(query_text);
    EXPECT_TRUE(aq.ok()) << aq.status();
    aq_ = aq.value();
    for (const EventPatternDecl& p : aq_->query->patterns) {
      patterns_.emplace_back(p);
    }
    matcher_ =
        std::make_unique<MultieventMatcher>(aq_, &patterns_, options);
  }

  std::vector<PatternMatch> Feed(const Event& e) {
    std::vector<PatternMatch> out;
    matcher_->OnEvent(e, &out);
    return out;
  }

  MultieventMatcher* matcher() { return matcher_.get(); }

 private:
  AnalyzedQueryPtr aq_;
  std::vector<CompiledPattern> patterns_;
  std::unique_ptr<MultieventMatcher> matcher_;
};

Event Start(const std::string& parent, const std::string& child,
            Timestamp ts, int64_t parent_pid = 10, int64_t child_pid = 20) {
  return EventBuilder()
      .At(ts)
      .OnHost("h1")
      .Subject(parent, parent_pid)
      .Op(EventOp::kStart)
      .ProcObject(child, child_pid)
      .Build();
}

Event FileIo(const std::string& exe, EventOp op, const std::string& path,
             Timestamp ts, int64_t pid = 30) {
  return EventBuilder()
      .At(ts)
      .OnHost("h1")
      .Subject(exe, pid)
      .Op(op)
      .FileObject(path)
      .Build();
}

TEST(MatcherTest, OrderedTwoStepSequence) {
  MatcherHarness h(
      "proc a[\"%cmd.exe\"] start proc b as e1 "
      "proc c write file f as e2 "
      "with e1 -> e2 return a");
  EXPECT_TRUE(h.Feed(Start("cmd.exe", "osql.exe", 100)).empty());
  auto matches = h.Feed(FileIo("sqlservr.exe", EventOp::kWrite, "/d", 200));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].events[0].subject.exe_name, "cmd.exe");
  EXPECT_EQ(matches[0].events[1].obj_file.path, "/d");
  EXPECT_EQ(matches[0].first_ts, 100);
  EXPECT_EQ(matches[0].last_ts, 200);
}

TEST(MatcherTest, OrderRejected) {
  MatcherHarness h(
      "proc a[\"%cmd.exe\"] start proc b as e1 "
      "proc c write file f as e2 "
      "with e1 -> e2 return a");
  // e2-type event first: no partial exists yet, so no match when the
  // e1-type event follows alone.
  EXPECT_TRUE(h.Feed(FileIo("sqlservr.exe", EventOp::kWrite, "/d", 50)).empty());
  EXPECT_TRUE(h.Feed(Start("cmd.exe", "osql.exe", 100)).empty());
  EXPECT_EQ(h.matcher()->stats().matches, 0u);
}

TEST(MatcherTest, SkipTillAnyMatchIgnoresNoise) {
  MatcherHarness h(
      "proc a[\"%cmd.exe\"] start proc b as e1 "
      "proc c[\"%sqlservr.exe\"] write file f as e2 "
      "with e1 -> e2 return a");
  h.Feed(Start("cmd.exe", "osql.exe", 100));
  // Noise events in between must not break the partial match.
  h.Feed(FileIo("chrome.exe", EventOp::kRead, "/x", 110));
  h.Feed(Start("explorer.exe", "notepad.exe", 120));
  auto matches = h.Feed(FileIo("sqlservr.exe", EventOp::kWrite, "/d", 200));
  EXPECT_EQ(matches.size(), 1u);
}

TEST(MatcherTest, SharedVariableEnforced) {
  // f1 must be the same file in both patterns (paper Query 1's dump file).
  MatcherHarness h(
      "proc a write file f1 as e1 "
      "proc b read file f1 as e2 "
      "with e1 -> e2 return a, b, f1");
  h.Feed(FileIo("sqlservr.exe", EventOp::kWrite, "/backup1.dmp", 100));
  // Read of a DIFFERENT file does not complete the match.
  EXPECT_TRUE(h.Feed(FileIo("sbblv.exe", EventOp::kRead, "/other.txt", 150))
                  .empty());
  // Read of the same file completes it.
  auto matches = h.Feed(FileIo("sbblv.exe", EventOp::kRead,
                               "/backup1.dmp", 200));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].events[1].obj_file.path, "/backup1.dmp");
}

TEST(MatcherTest, SharedSubjectVariableEnforced) {
  // Same process must read the file then talk to the network (p4 in
  // Query 1). Process identity is (host, pid).
  MatcherHarness h(
      "proc p read file f as e1 "
      "proc p write ip i as e2 "
      "with e1 -> e2 return p");
  h.Feed(FileIo("sbblv.exe", EventOp::kRead, "/dump", 100, /*pid=*/77));
  // A different pid writing to the network is not the same p.
  Event other = EventBuilder()
                    .At(150)
                    .OnHost("h1")
                    .Subject("sbblv.exe", 99)
                    .Op(EventOp::kWrite)
                    .NetObject("6.6.6.6")
                    .Build();
  EXPECT_TRUE(h.Feed(other).empty());
  Event same = EventBuilder()
                   .At(200)
                   .OnHost("h1")
                   .Subject("sbblv.exe", 77)
                   .Op(EventOp::kWrite)
                   .NetObject("6.6.6.6")
                   .Build();
  EXPECT_EQ(h.Feed(same).size(), 1u);
}

TEST(MatcherTest, ForkingFindsAllCombinations) {
  MatcherHarness h(
      "proc a start proc b as e1 "
      "proc c write file f as e2 "
      "with e1 -> e2 return a");
  h.Feed(Start("cmd.exe", "x.exe", 100, 10, 20));
  h.Feed(Start("cmd.exe", "y.exe", 110, 10, 21));
  // Both partials complete on the same closing event.
  auto matches = h.Feed(FileIo("w.exe", EventOp::kWrite, "/f", 200));
  EXPECT_EQ(matches.size(), 2u);
}

TEST(MatcherTest, BoundedGapRejectsSlowSequence) {
  MatcherHarness h(
      "proc a start proc b as e1 "
      "proc c write file f as e2 "
      "with e1 ->[10 s] e2 return a");
  h.Feed(Start("cmd.exe", "x.exe", 0));
  EXPECT_TRUE(
      h.Feed(FileIo("w.exe", EventOp::kWrite, "/f", 20 * kSecond)).empty());
  // Within the bound it matches.
  h.Feed(Start("cmd.exe", "x.exe", 30 * kSecond));
  EXPECT_EQ(
      h.Feed(FileIo("w.exe", EventOp::kWrite, "/f", 35 * kSecond)).size(),
      1u);
}

TEST(MatcherTest, UnorderedMatchesBothOrders) {
  MatcherHarness h(
      "proc a[\"%cmd.exe\"] start proc b as e1 "
      "proc c[\"%sqlservr.exe\"] write file f as e2 "
      "return a");  // no `with` clause: unordered
  // Reverse order still matches.
  h.Feed(FileIo("sqlservr.exe", EventOp::kWrite, "/d", 100));
  auto matches = h.Feed(Start("cmd.exe", "osql.exe", 200));
  EXPECT_EQ(matches.size(), 1u);
}

TEST(MatcherTest, PruneDropsStalePartials) {
  MatcherHarness h(
      "proc a start proc b as e1 "
      "proc c write file f as e2 "
      "with e1 -> e2 return a",
      MultieventMatcher::Options{/*match_horizon=*/kMinute,
                                 /*max_partial_matches=*/1000});
  h.Feed(Start("cmd.exe", "x.exe", 0));
  EXPECT_EQ(h.matcher()->live_partials(), 1u);
  h.matcher()->Prune(2 * kMinute);
  EXPECT_EQ(h.matcher()->live_partials(), 0u);
  // The stale partial cannot complete any more.
  EXPECT_TRUE(
      h.Feed(FileIo("w.exe", EventOp::kWrite, "/f", 2 * kMinute)).empty());
}

TEST(MatcherTest, CapBoundsPartialCount) {
  MatcherHarness h(
      "proc a start proc b as e1 "
      "proc c write file f as e2 "
      "with e1 -> e2 return a",
      MultieventMatcher::Options{24 * kHour, /*max_partial_matches=*/5});
  for (int i = 0; i < 20; ++i) {
    h.Feed(Start("cmd.exe", "x.exe", i * 10, 10, 20 + i));
  }
  EXPECT_LE(h.matcher()->live_partials(), 5u);
  EXPECT_GT(h.matcher()->stats().partials_dropped, 0u);
}

TEST(MatcherTest, FourStepPaperQuery1Sequence) {
  MatcherHarness h(testing::ReadQueryFile("query1_rule.saql"));
  auto host = [](Event e) {
    e.agent_id = "db-server-01";
    return e;
  };
  // The c5 exfiltration sequence on the DB server.
  h.Feed(host(Start("cmd.exe", "osql.exe", 100, 11, 12)));
  h.Feed(host(FileIo("sqlservr.exe", EventOp::kWrite,
                     "C:\\MSSQL\\Backup\\backup1.dmp", 200, 13)));
  h.Feed(host(FileIo("sbblv.exe", EventOp::kRead,
                     "C:\\MSSQL\\Backup\\backup1.dmp", 300, 14)));
  Event exfil = EventBuilder()
                    .At(400)
                    .OnHost("db-server-01")
                    .Subject("sbblv.exe", 14)
                    .Op(EventOp::kWrite)
                    .NetObject("66.77.88.129", 443)
                    .Amount(1000000)
                    .Build();
  auto matches = h.Feed(exfil);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].events.size(), 4u);
  EXPECT_EQ(matches[0].events[3].obj_net.dst_ip, "66.77.88.129");
}

TEST(MatcherTest, StatsTrackPeaks) {
  MatcherHarness h(
      "proc a start proc b as e1 "
      "proc c write file f as e2 "
      "with e1 -> e2 return a");
  for (int i = 0; i < 3; ++i) h.Feed(Start("p.exe", "c.exe", i, 1, 50 + i));
  EXPECT_EQ(h.matcher()->stats().partials_created, 3u);
  EXPECT_EQ(h.matcher()->stats().peak_partials, 3u);
  EXPECT_EQ(h.matcher()->stats().events_in, 3u);
}

}  // namespace
}  // namespace saql
