#include "core/event.h"

#include <gtest/gtest.h>

#include "core/field_access.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

TEST(EntityTypeTest, ParseRoundTrip) {
  EXPECT_EQ(ParseEntityType("proc").value(), EntityType::kProcess);
  EXPECT_EQ(ParseEntityType("file").value(), EntityType::kFile);
  EXPECT_EQ(ParseEntityType("ip").value(), EntityType::kNetwork);
  EXPECT_FALSE(ParseEntityType("socket").ok());
  EXPECT_STREQ(EntityTypeName(EntityType::kNetwork), "ip");
}

TEST(EventOpTest, ParseAllSpellings) {
  EXPECT_EQ(ParseEventOp("read").value(), EventOp::kRead);
  EXPECT_EQ(ParseEventOp("WRITE").value(), EventOp::kWrite);
  EXPECT_EQ(ParseEventOp("start").value(), EventOp::kStart);
  EXPECT_EQ(ParseEventOp("exec").value(), EventOp::kExecute);
  EXPECT_EQ(ParseEventOp("unlink").value(), EventOp::kDelete);
  EXPECT_EQ(ParseEventOp("connect").value(), EventOp::kConnect);
  EXPECT_FALSE(ParseEventOp("teleport").ok());
}

TEST(OpMaskTest, BitOperations) {
  OpMask mask = OpBit(EventOp::kRead) | OpBit(EventOp::kWrite);
  EXPECT_TRUE(OpMaskContains(mask, EventOp::kRead));
  EXPECT_TRUE(OpMaskContains(mask, EventOp::kWrite));
  EXPECT_FALSE(OpMaskContains(mask, EventOp::kStart));
}

TEST(OpMaskTest, ToStringListsOps) {
  OpMask mask = OpBit(EventOp::kRead) | OpBit(EventOp::kWrite);
  EXPECT_EQ(OpMaskToString(mask), "read || write");
}

TEST(EventTest, ClassificationByObjectType) {
  Event fe = EventBuilder().Subject("a.exe").FileObject("/x").Build();
  Event pe = EventBuilder().Subject("a.exe").ProcObject("b.exe").Build();
  Event ne = EventBuilder().Subject("a.exe").NetObject("1.2.3.4").Build();
  EXPECT_TRUE(IsFileEvent(fe));
  EXPECT_TRUE(IsProcessEvent(pe));
  EXPECT_TRUE(IsNetworkEvent(ne));
  EXPECT_FALSE(IsFileEvent(ne));
}

TEST(EventTest, ToStringMentionsKeyParts) {
  Event e = EventBuilder()
                .At(0)
                .OnHost("host-1")
                .Subject("cmd.exe", 42)
                .Op(EventOp::kStart)
                .ProcObject("osql.exe", 43)
                .Build();
  std::string s = e.ToString();
  EXPECT_NE(s.find("cmd.exe"), std::string::npos);
  EXPECT_NE(s.find("start"), std::string::npos);
  EXPECT_NE(s.find("osql.exe"), std::string::npos);
  EXPECT_NE(s.find("host-1"), std::string::npos);
}

TEST(FieldAccessTest, SubjectFields) {
  Event e = EventBuilder().Subject("cmd.exe", 42).FileObject("/tmp/x").Build();
  EXPECT_EQ(GetEntityField(e, EntityRole::kSubject, "exe_name")
                .value().AsString(),
            "cmd.exe");
  EXPECT_EQ(GetEntityField(e, EntityRole::kSubject, "pid").value().AsInt(),
            42);
}

TEST(FieldAccessTest, FileObjectFields) {
  Event e = EventBuilder().Subject("a").FileObject("/tmp/dump.bin").Build();
  EXPECT_EQ(GetEntityField(e, EntityRole::kObject, "name").value().AsString(),
            "/tmp/dump.bin");
  EXPECT_EQ(GetEntityField(e, EntityRole::kObject, "path").value().AsString(),
            "/tmp/dump.bin");
}

TEST(FieldAccessTest, NetworkObjectFields) {
  Event e = EventBuilder().Subject("a").NetObject("8.8.4.4", 53).Build();
  EXPECT_EQ(GetEntityField(e, EntityRole::kObject, "dstip")
                .value().AsString(),
            "8.8.4.4");
  EXPECT_EQ(GetEntityField(e, EntityRole::kObject, "dport").value().AsInt(),
            53);
  EXPECT_EQ(GetEntityField(e, EntityRole::kObject, "protocol")
                .value().AsString(),
            "tcp");
}

TEST(FieldAccessTest, UnknownFieldIsNotFound) {
  Event e = EventBuilder().Subject("a").FileObject("/x").Build();
  Result<Value> r = GetEntityField(e, EntityRole::kObject, "dstip");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FieldAccessTest, EventFields) {
  Event e = EventBuilder()
                .At(55)
                .OnHost("h1")
                .Subject("p.exe")
                .NetObject("1.1.1.1")
                .Amount(1234)
                .Op(EventOp::kWrite)
                .Build();
  EXPECT_EQ(GetEventField(e, "amount").value().AsInt(), 1234);
  EXPECT_EQ(GetEventField(e, "agentid").value().AsString(), "h1");
  EXPECT_EQ(GetEventField(e, "ts").value().AsInt(), 55);
  EXPECT_EQ(GetEventField(e, "op").value().AsString(), "write");
  EXPECT_EQ(GetEventField(e, "failed").value().AsBool(), false);
}

TEST(FieldAccessTest, EventSubjectPassthrough) {
  Event e = EventBuilder().Subject("p.exe", 9).FileObject("/x").Build();
  EXPECT_EQ(GetEventField(e, "subject_exe_name").value().AsString(), "p.exe");
  EXPECT_EQ(GetEventField(e, "object_name").value().AsString(), "/x");
}

TEST(FieldAccessTest, DefaultFields) {
  EXPECT_STREQ(DefaultFieldForEntity(EntityType::kProcess), "exe_name");
  EXPECT_STREQ(DefaultFieldForEntity(EntityType::kFile), "name");
  EXPECT_STREQ(DefaultFieldForEntity(EntityType::kNetwork), "dstip");
}

TEST(FieldAccessTest, ValidityChecks) {
  EXPECT_TRUE(IsValidEntityField(EntityType::kProcess, "exe_name"));
  EXPECT_FALSE(IsValidEntityField(EntityType::kProcess, "dstip"));
  EXPECT_TRUE(IsValidEntityField(EntityType::kNetwork, "dport"));
  EXPECT_TRUE(IsValidEventField("amount"));
  EXPECT_TRUE(IsValidEventField("subject_pid"));
  EXPECT_FALSE(IsValidEventField("colour"));
}

}  // namespace
}  // namespace saql
