// The executor's op/entity dispatch index: events reach only groups whose
// master pattern can structurally match them, skipped deliveries stay
// accounted, and routing must be invisible to results — alerts and
// ForwardRatio identical with routing on or off.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/scheduler.h"
#include "stream/stream_executor.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

Event NetWrite(const std::string& exe, Timestamp ts) {
  return EventBuilder()
      .At(ts)
      .OnHost("h1")
      .Subject(exe)
      .Op(EventOp::kWrite)
      .NetObject("1.1.1.1")
      .Amount(10)
      .Build();
}

Event FileRead(const std::string& exe, Timestamp ts) {
  return EventBuilder()
      .At(ts)
      .OnHost("h1")
      .Subject(exe)
      .Op(EventOp::kRead)
      .FileObject("/data/f")
      .Build();
}

Event ProcStart(const std::string& exe, Timestamp ts) {
  return EventBuilder()
      .At(ts)
      .OnHost("h1")
      .Subject(exe)
      .Op(EventOp::kStart)
      .ProcObject("child.exe")
      .Build();
}

/// A stream with one net write, one file read, one process start.
EventBatch MixedStream() {
  EventBatch out;
  out.push_back(NetWrite("a.exe", 1 * kSecond));
  out.push_back(FileRead("a.exe", 2 * kSecond));
  out.push_back(ProcStart("a.exe", 3 * kSecond));
  return out;
}

TEST(DispatchRoutingTest, EventsReachOnlyEligibleGroups) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p write ip i as e return p", "net").ok());
  ASSERT_TRUE(
      engine.AddQuery("proc p read file f as e return p", "file").ok());
  VectorEventSource source(MixedStream());
  ASSERT_TRUE(engine.Run(&source).ok());

  // 3 events, 2 groups: net write → net group, file read → file group,
  // proc start → nobody. Broadcast would have delivered 6.
  EXPECT_EQ(engine.executor_stats().events, 3u);
  EXPECT_EQ(engine.executor_stats().deliveries, 2u);
  EXPECT_EQ(engine.executor_stats().routed_skips, 4u);

  // Each query saw exactly its own event.
  auto stats = engine.query_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].second.events_in, 1u);  // net
  EXPECT_EQ(stats[1].second.events_in, 1u);  // file
}

TEST(DispatchRoutingTest, RoutingDisabledBroadcasts) {
  SaqlEngine::Options opts;
  opts.enable_routing = false;
  SaqlEngine engine(opts);
  ASSERT_TRUE(
      engine.AddQuery("proc p write ip i as e return p", "net").ok());
  ASSERT_TRUE(
      engine.AddQuery("proc p read file f as e return p", "file").ok());
  VectorEventSource source(MixedStream());
  ASSERT_TRUE(engine.Run(&source).ok());
  EXPECT_EQ(engine.executor_stats().deliveries, 6u);
  EXPECT_EQ(engine.executor_stats().routed_skips, 0u);
}

TEST(DispatchRoutingTest, ForwardRatioConsistentWithRoutingOnAndOff) {
  auto run = [](bool routing) {
    SaqlEngine::Options opts;
    opts.enable_routing = routing;
    SaqlEngine engine(opts);
    EXPECT_TRUE(
        engine.AddQuery("proc p write ip i as e return p", "net").ok());
    EXPECT_TRUE(
        engine.AddQuery("proc p read file f as e return p", "file").ok());
    EventBatch events;
    for (int i = 0; i < 30; ++i) {
      if (i % 3 == 0) {
        events.push_back(NetWrite("a.exe", i * kSecond));
      } else if (i % 3 == 1) {
        events.push_back(FileRead("a.exe", i * kSecond));
      } else {
        events.push_back(ProcStart("a.exe", i * kSecond));
      }
    }
    VectorEventSource source(std::move(events));
    EXPECT_TRUE(engine.Run(&source).ok());
    return engine.forward_ratio();
  };
  // Routed-away events are still accounted as seen by the group, so the
  // scheme's headline metric is comparable across modes.
  EXPECT_DOUBLE_EQ(run(true), run(false));
}

TEST(DispatchRoutingTest, AlertsIdenticalWithRoutingOnAndOff) {
  auto run = [](bool routing) {
    SaqlEngine::Options opts;
    opts.enable_routing = routing;
    SaqlEngine engine(opts);
    EXPECT_TRUE(engine
                    .AddQuery("proc p[\"%m.exe\"] write ip i as e "
                              "return distinct p, i",
                              "rule")
                    .ok());
    EXPECT_TRUE(engine
                    .AddQuery("proc p write ip i as e #time(10 s) "
                              "state ss { amt := sum(e.amount) } group by p "
                              "alert ss.amt > 15 return p, ss.amt",
                              "stateful")
                    .ok());
    EventBatch events;
    for (int i = 0; i < 40; ++i) {
      events.push_back(i % 2 == 0 ? NetWrite("m.exe", i * kSecond)
                                  : FileRead("m.exe", i * kSecond));
    }
    VectorEventSource source(std::move(events));
    EXPECT_TRUE(engine.Run(&source).ok());
    std::vector<std::string> out;
    for (const Alert& a : engine.alerts()) out.push_back(a.ToString());
    return out;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(DispatchRoutingTest, GroupInterestCoversEveryMasterPatternShape) {
  Result<AnalyzedQueryPtr> aq = CompileSaql(
      "proc a start proc b as e1 "
      "proc c read || write file f as e2 "
      "return a");
  ASSERT_TRUE(aq.ok()) << aq.status();
  Result<std::unique_ptr<CompiledQuery>> q =
      CompiledQuery::Create(aq.value(), "q");
  ASSERT_TRUE(q.ok()) << q.status();
  QueryGroup group("sig");
  group.AddMember(q->get());
  RoutingInterest interest = group.Interest();
  EXPECT_FALSE(interest.all);
  EXPECT_TRUE(interest.Wants(EntityType::kProcess, EventOp::kStart));
  EXPECT_TRUE(interest.Wants(EntityType::kFile, EventOp::kRead));
  EXPECT_TRUE(interest.Wants(EntityType::kFile, EventOp::kWrite));
  EXPECT_FALSE(interest.Wants(EntityType::kFile, EventOp::kStart));
  EXPECT_FALSE(interest.Wants(EntityType::kNetwork, EventOp::kWrite));
  EXPECT_FALSE(interest.Wants(EntityType::kProcess, EventOp::kRead));
}

TEST(DispatchRoutingTest, RoutedSkipsKeepGroupIngressAccounting) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p write ip i as e return p", "net").ok());
  EventBatch events;
  for (int i = 0; i < 8; ++i) events.push_back(FileRead("x.exe", i));
  events.push_back(NetWrite("x.exe", 9 * kSecond));
  VectorEventSource source(std::move(events));
  ASSERT_TRUE(engine.Run(&source).ok());
  // 8 routed-away + 1 delivered events all count as seen: 1/9 forwarded.
  EXPECT_DOUBLE_EQ(engine.forward_ratio(), 1.0 / 9.0);
}

class RecordingProcessor : public EventProcessor {
 public:
  void OnEvent(const Event& event) override { events.push_back(event); }
  void OnWatermark(Timestamp ts) override { watermarks.push_back(ts); }
  void OnFinish() override {}

  EventBatch events;
  std::vector<Timestamp> watermarks;
};

TEST(DispatchRoutingTest, DefaultInterestReceivesEverything) {
  // Processors without a declared envelope keep broadcast semantics even
  // with routing enabled.
  StreamExecutor exec;  // routing on by default
  RecordingProcessor p;
  exec.Subscribe(&p);
  VectorEventSource source(MixedStream());
  exec.Run(&source, 2);
  EXPECT_EQ(p.events.size(), 3u);
  EXPECT_EQ(exec.stats().deliveries, 3u);
  EXPECT_EQ(exec.stats().routed_skips, 0u);
}

TEST(DispatchRoutingTest, UnchangedWatermarkNotReEmitted) {
  // Batch 1 ends at ts=5s; batch 2's events are all at ts<=5s (late but
  // not advancing): only one watermark may be emitted for both.
  EventBatch events;
  events.push_back(NetWrite("a.exe", 5 * kSecond));
  events.push_back(NetWrite("a.exe", 5 * kSecond));
  events.push_back(NetWrite("a.exe", 4 * kSecond));
  events.push_back(NetWrite("a.exe", 7 * kSecond));
  StreamExecutor exec;
  RecordingProcessor p;
  exec.Subscribe(&p);
  VectorEventSource source(std::move(events));
  exec.Run(&source, 2);  // batches: [5s, 5s], [4s, 7s]
  ASSERT_EQ(p.watermarks.size(), 2u);
  EXPECT_EQ(p.watermarks[0], 5 * kSecond);
  EXPECT_EQ(p.watermarks[1], 7 * kSecond);
  EXPECT_EQ(exec.stats().watermarks, 2u);

  // Same stream, but the second batch never advances: one emission only.
  EventBatch flat;
  flat.push_back(NetWrite("a.exe", 5 * kSecond));
  flat.push_back(NetWrite("a.exe", 5 * kSecond));
  flat.push_back(NetWrite("a.exe", 4 * kSecond));
  flat.push_back(NetWrite("a.exe", 5 * kSecond));
  StreamExecutor exec2;
  RecordingProcessor p2;
  exec2.Subscribe(&p2);
  VectorEventSource source2(std::move(flat));
  exec2.Run(&source2, 2);
  ASSERT_EQ(p2.watermarks.size(), 1u);
  EXPECT_EQ(p2.watermarks[0], 5 * kSecond);
}

TEST(DispatchRoutingTest, BatchedDeliveryPreservesStreamOrder) {
  SaqlEngine::Options opts;
  opts.batch_size = 3;
  SaqlEngine engine(opts);
  ASSERT_TRUE(engine
                  .AddQuery("proc p write ip i as e alert e.amount > 0 "
                            "return e.ts",
                            "q")
                  .ok());
  EventBatch events;
  for (int i = 0; i < 10; ++i) {
    Event e = NetWrite("a.exe", i * kSecond);
    events.push_back(e);
    events.push_back(FileRead("a.exe", i * kSecond));  // routed away
  }
  VectorEventSource source(std::move(events));
  ASSERT_TRUE(engine.Run(&source).ok());
  ASSERT_EQ(engine.alerts().size(), 10u);
  for (size_t i = 1; i < engine.alerts().size(); ++i) {
    EXPECT_LE(engine.alerts()[i - 1].ts, engine.alerts()[i].ts);
  }
}

}  // namespace
}  // namespace saql
