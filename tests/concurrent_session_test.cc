// Concurrent multi-tenant sessions: N sessions of one engine, driven from
// N independent threads, must behave as fully isolated tenants — each
// session's alert sequence and per-query stats bit-identical to the same
// session run solo — while sharing the process-wide interner, including
// under forced live interner rotation. Also pins the record-path
// collision guard (two live sessions must not record to one path).
//
// These tests run under TSan in CI (the thread-sanitize job's filter
// matches every *Session* suite): the lock-free interner read path, the
// rotation/heal handshake, and the engine-core registries are exactly the
// code a data race would live in.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "collect/enterprise_sim.h"
#include "core/interner.h"
#include "engine/engine.h"
#include "test_util.h"

namespace saql {
namespace {

// ---------------------------------------------------------------------
// Helpers.

std::vector<std::pair<std::string, std::string>> CorpusQueries() {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           SAQL_QUERY_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".saql") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& path : files) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    out.emplace_back(std::filesystem::path(path).stem().string(),
                     text.str());
  }
  return out;
}

const EventBatch& SimCorpus() {
  static const EventBatch* events = [] {
    EnterpriseSimulator::Options opts;
    // Long enough to reach the simulator's APT attack (12 minutes in) so
    // every corpus query has alert traffic to disagree about.
    opts.duration = 16 * kMinute;
    return new EventBatch(EnterpriseSimulator(opts).Generate());
  }();
  return *events;
}

/// One session's deterministic drive schedule and its observed output.
struct SessionRun {
  // Schedule.
  size_t shards = 1;        ///< SessionOptions::num_shards
  size_t push_size = 512;   ///< events per Push
  size_t watermark_every = 1;
  size_t stop_after = 0;    ///< 0 = whole corpus; else close mid-run

  // Output.
  Status status;
  uint64_t session_id = 0;
  std::vector<std::string> alerts;
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>> stats;
};

/// Opens one session with a per-session alert sink and drives it over
/// `events` per `run`'s schedule. Every observable lands in `run`; the
/// drive is fully deterministic, so the same schedule solo and
/// concurrent must produce byte-identical output.
void DriveSession(SaqlEngine* engine, const EventBatch& events,
                  SessionRun* run) {
  SessionOptions sopts;
  sopts.num_shards = run->shards;
  sopts.alert_sink = [run](const Alert& a) {
    run->alerts.push_back(a.ToString());
  };
  auto session = engine->OpenSession(std::move(sopts));
  if (!session.ok()) {
    run->status = session.status();
    return;
  }
  run->session_id = (*session)->id();
  EventBatch copy = events;
  const size_t limit =
      run->stop_after == 0 ? copy.size()
                           : std::min(run->stop_after, copy.size());
  size_t pushes = 0;
  for (size_t pos = 0; pos < limit; pos += run->push_size) {
    size_t n = std::min(run->push_size, limit - pos);
    Status st = (*session)->Push(copy.data() + pos, n);
    if (!st.ok()) {
      run->status = st;
      return;
    }
    if (++pushes % run->watermark_every == 0) {
      st = (*session)->AdvanceWatermark((*session)->max_event_ts());
      if (!st.ok()) {
        run->status = st;
        return;
      }
    }
  }
  Status st = (*session)->AdvanceWatermark((*session)->max_event_ts());
  if (st.ok()) st = (*session)->Flush();
  if (!st.ok()) {
    run->status = st;
    return;
  }
  run->stats = (*session)->query_stats();
  run->status = (*session)->Close();
}

void ExpectRunEq(const SessionRun& got, const SessionRun& solo,
                 const std::string& label) {
  ASSERT_TRUE(got.status.ok()) << label << ": " << got.status;
  ASSERT_TRUE(solo.status.ok()) << label << ": " << solo.status;
  EXPECT_EQ(got.alerts, solo.alerts) << label;
  ASSERT_EQ(got.stats.size(), solo.stats.size()) << label;
  for (size_t i = 0; i < got.stats.size(); ++i) {
    EXPECT_EQ(got.stats[i].first, solo.stats[i].first) << label;
    const auto& x = got.stats[i].second;
    const auto& y = solo.stats[i].second;
    const std::string ql = label + " " + got.stats[i].first;
    EXPECT_EQ(x.events_in, y.events_in) << ql;
    EXPECT_EQ(x.events_past_global, y.events_past_global) << ql;
    EXPECT_EQ(x.matches, y.matches) << ql;
    EXPECT_EQ(x.windows_closed, y.windows_closed) << ql;
    EXPECT_EQ(x.alerts, y.alerts) << ql;
    EXPECT_EQ(x.eval_errors, y.eval_errors) << ql;
  }
}

std::unique_ptr<SaqlEngine> MakeEngine(SaqlEngine::Options opts) {
  auto engine = std::make_unique<SaqlEngine>(opts);
  for (const auto& [name, text] : CorpusQueries()) {
    Status st = engine->AddQuery(text, name);
    EXPECT_TRUE(st.ok()) << name << ": " << st;
  }
  return engine;
}

// ---------------------------------------------------------------------
// Tentpole: K concurrent sessions == K solo sessions, bit for bit.

TEST(ConcurrentSessionTest, ParallelSessionsMatchSoloRuns) {
  const EventBatch& events = SimCorpus();
  // Mixed tenancy: different lane counts, push splits, and watermark
  // cadences per session; one session closes mid-run.
  std::vector<SessionRun> schedules = {
      {.shards = 1, .push_size = 257, .watermark_every = 1},
      {.shards = 2, .push_size = 512, .watermark_every = 2},
      {.shards = 4, .push_size = 1024, .watermark_every = 1},
      {.shards = 2,
       .push_size = 333,
       .watermark_every = 3,
       .stop_after = events.size() / 2},
  };

  // Solo references: each schedule alone on its own engine.
  std::vector<SessionRun> solo = schedules;
  for (SessionRun& run : solo) {
    auto engine = MakeEngine(SaqlEngine::Options{});
    DriveSession(engine.get(), events, &run);
    ASSERT_TRUE(run.status.ok()) << run.status;
    // Full-corpus schedules reach the APT attack and must alert; the
    // mid-run closer stops before it.
    if (run.stop_after == 0) ASSERT_FALSE(run.alerts.empty());
  }

  // All schedules concurrently against one engine.
  auto engine = MakeEngine(SaqlEngine::Options{});
  std::vector<SessionRun> got = schedules;
  {
    std::vector<std::thread> threads;
    threads.reserve(got.size());
    for (SessionRun& run : got) {
      threads.emplace_back(
          [&engine, &events, &run] { DriveSession(engine.get(), events, &run); });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(engine->session_count(), 0u);

  std::vector<uint64_t> ids;
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectRunEq(got[i], solo[i], "session " + std::to_string(i));
    ids.push_back(got[i].session_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end())
      << "session ids must be distinct";
}

// Dynamic add/remove inside one session while others stream: churn stays
// session-local (the other tenants' output is untouched), and the
// churning session matches its own solo run.
TEST(ConcurrentSessionTest, DynamicChurnStaysSessionLocal) {
  const EventBatch& events = SimCorpus();

  auto drive_churn = [&events](SaqlEngine* engine, SessionRun* run) {
    SessionOptions sopts;
    sopts.num_shards = run->shards;
    sopts.alert_sink = [run](const Alert& a) {
      run->alerts.push_back(a.ToString());
    };
    auto session = engine->OpenSession(std::move(sopts));
    if (!session.ok()) {
      run->status = session.status();
      return;
    }
    EventBatch copy = events;
    const size_t half = copy.size() / 2;
    Status st = (*session)->Push(copy.data(), half);
    if (st.ok()) {
      st = (*session)->AdvanceWatermark((*session)->max_event_ts());
    }
    // Attach a query mid-stream, retract a registered one.
    if (st.ok()) {
      auto h = (*session)->AddQuery(
          "proc p write ip i as e #time(1 min) "
          "state ss { amt := sum(e.amount) } group by p "
          "alert ss.amt > 0 return p, ss.amt",
          "midstream");
      if (!h.ok()) st = h.status();
    }
    if (st.ok()) st = (*session)->RemoveQuery(CorpusQueries()[0].first);
    if (st.ok()) {
      st = (*session)->Push(copy.data() + half, copy.size() - half);
    }
    if (st.ok()) {
      st = (*session)->AdvanceWatermark((*session)->max_event_ts());
    }
    if (st.ok()) st = (*session)->Flush();
    if (!st.ok()) {
      run->status = st;
      return;
    }
    run->stats = (*session)->query_stats();
    run->status = (*session)->Close();
  };

  // Solo references.
  SessionRun churn_solo{.shards = 2};
  {
    auto engine = MakeEngine(SaqlEngine::Options{});
    drive_churn(engine.get(), &churn_solo);
    ASSERT_TRUE(churn_solo.status.ok()) << churn_solo.status;
  }
  SessionRun plain_solo{.shards = 1, .push_size = 400, .watermark_every = 2};
  {
    auto engine = MakeEngine(SaqlEngine::Options{});
    DriveSession(engine.get(), events, &plain_solo);
    ASSERT_TRUE(plain_solo.status.ok()) << plain_solo.status;
  }

  // Concurrently: the churning session + a plain session.
  auto engine = MakeEngine(SaqlEngine::Options{});
  SessionRun churn_got{.shards = 2};
  SessionRun plain_got{.shards = 1, .push_size = 400, .watermark_every = 2};
  {
    std::thread a([&] { drive_churn(engine.get(), &churn_got); });
    std::thread b([&] { DriveSession(engine.get(), events, &plain_got); });
    a.join();
    b.join();
  }
  ExpectRunEq(churn_got, churn_solo, "churning session");
  ExpectRunEq(plain_got, plain_solo, "plain session");
  // Churn never leaked into the engine-level registry.
  EXPECT_EQ(engine->num_queries(), CorpusQueries().size());
}

// ---------------------------------------------------------------------
// Live interner rotation under open sessions.

TEST(ConcurrentSessionTest, ForcedMidStreamRotationPreservesAlerts) {
  const EventBatch& events = SimCorpus();

  // References: no rotation policy at all.
  std::vector<SessionRun> schedules = {
      {.shards = 1, .push_size = 512, .watermark_every = 1},
      {.shards = 2, .push_size = 512, .watermark_every = 1},
      {.shards = 4, .push_size = 777, .watermark_every = 2},
  };
  std::vector<SessionRun> solo = schedules;
  for (SessionRun& run : solo) {
    auto engine = MakeEngine(SaqlEngine::Options{});
    DriveSession(engine.get(), events, &run);
    ASSERT_TRUE(run.status.ok()) << run.status;
  }

  // Rotation at every push: payload_bytes > 1 the moment anything is
  // interned, so every session's every push rotates the global table and
  // every other session heals at its next quiesce point.
  const uint64_t gen_before = Interner::Global().generation();
  SaqlEngine::Options opts;
  opts.interner_rotate_bytes = 1;
  auto engine = MakeEngine(opts);
  std::vector<SessionRun> got = schedules;
  {
    std::vector<std::thread> threads;
    for (SessionRun& run : got) {
      threads.emplace_back(
          [&engine, &events, &run] { DriveSession(engine.get(), events, &run); });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_GT(Interner::Global().generation(), gen_before);
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectRunEq(got[i], solo[i], "rotated session " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------
// Record-path collision guard.

TEST(ConcurrentSessionTest, SecondSessionOnLiveRecordPathFailsCleanly) {
  const std::string dir = ::testing::TempDir() + "/saql_record_collision";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/events.saqlog";

  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%a.exe\"] write ip i as e return p", "q")
          .ok());
  SessionOptions first_opts;
  first_opts.record_path = path;
  auto first = engine.OpenSession(std::move(first_opts));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE((*first)->recording_status().ok());

  // The same live path again — from this engine or any other in the
  // process — must fail the open, not corrupt the first writer.
  SessionOptions second_opts;
  second_opts.record_path = path;
  auto second = engine.OpenSession(std::move(second_opts));
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);

  // The first session is unaffected: still open, still recording.
  EventBatch events;
  events.push_back(testing::EventBuilder()
                       .At(kSecond)
                       .OnHost("h1")
                       .Subject("a.exe", 100)
                       .Op(EventOp::kWrite)
                       .NetObject("1.1.1.1")
                       .Amount(1)
                       .Build());
  ASSERT_TRUE((*first)->Push(events).ok());
  EXPECT_TRUE((*first)->recording_status().ok());
  EXPECT_EQ((*first)->recorded_events(), 1u);
  ASSERT_TRUE((*first)->Close().ok());
  EXPECT_EQ(engine.alerts().size(), 1u);

  // Once the first closed, the path is free again.
  SessionOptions third_opts;
  third_opts.record_path = path;
  auto third = engine.OpenSession(std::move(third_opts));
  ASSERT_TRUE(third.ok()) << third.status();
  ASSERT_TRUE((*third)->Close().ok());
}

}  // namespace
}  // namespace saql
