// Static-analysis (QueryAnalysis::Lint / ExplainPlacement) tests: one
// pinned positive per diagnostic code, the corpus-stays-clean gate, the
// placement-matches-scheduler check, the engine/session rejection paths,
// and a no-false-positive property harness over generated satisfiable
// queries.

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/fleet_analysis.h"
#include "analysis/query_analysis.h"
#include "engine/engine.h"
#include "parser/analyzer.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::CompileQuery;
using testing::ReadQueryFile;

// Every checked-in paper/APT query (the saql_lint CI gate's file set).
const char* kCorpusFiles[] = {
    "query1_rule.saql",          "query2_timeseries.saql",
    "query3_invariant.saql",     "query4_outlier.saql",
    "apt/a6_invariant_excel.saql", "apt/a7_timeseries_network.saql",
    "apt/a8_outlier_dbscan.saql",  "apt/r1_initial_compromise.saql",
    "apt/r2_malware_infection.saql", "apt/r3_privilege_escalation.saql",
    "apt/r4_penetration.saql",
};

std::vector<Diagnostic> Lint(const std::string& text) {
  auto q = CompileQuery(text, "lint_target");
  if (q == nullptr) return {};
  return QueryAnalysis::Lint(*q);
}

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string Render(const std::vector<Diagnostic>& diags) {
  return RenderDiagnostics(diags, "  ");
}

// ---------------------------------------------------------------------------
// Pinned positives: one test per diagnostic code, asserting the stable
// code, its contracted severity, and a usable source span.
// ---------------------------------------------------------------------------

TEST(AnalysisLintTest, SA001StringContradiction) {
  auto diags = Lint(
      "proc p[exe_name = \"a.exe\", exe_name = \"b.exe\"] write ip i as e "
      "return p");
  const Diagnostic* d = Find(diags, "SA001");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_FALSE(d->span.IsZero());
  EXPECT_NE(d->message.find("unsatisfiable"), std::string::npos);
}

TEST(AnalysisLintTest, SA001LikePatternRejectsRequiredValue) {
  auto diags = Lint(
      "proc p[exe_name = \"cmd.exe\", exe_name = \"%osql.exe\"] "
      "write ip i as e return p");
  const Diagnostic* d = Find(diags, "SA001");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(AnalysisLintTest, SA001EmptyNumericRange) {
  auto diags =
      Lint("proc p[pid > 100, pid <= 50] write ip i as e return p");
  const Diagnostic* d = Find(diags, "SA001");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("empty numeric range"), std::string::npos);
}

TEST(AnalysisLintTest, SA001EqExcludedByNe) {
  auto diags =
      Lint("proc p[pid = 42, pid != 42] write ip i as e return p");
  ASSERT_NE(Find(diags, "SA001"), nullptr) << Render(diags);
}

TEST(AnalysisLintTest, SA001GlobalConjunction) {
  auto diags = Lint(
      "agentid = \"host-a\"\n"
      "agentid = \"host-b\"\n"
      "proc p write ip i as e return p");
  const Diagnostic* d = Find(diags, "SA001");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("global"), std::string::npos);
}

TEST(AnalysisLintTest, SA001CaseInsensitiveEqualValuesSatisfiable) {
  // The engine's LIKE matching is case-insensitive: these two constraints
  // agree, so no diagnostic may fire.
  auto diags = Lint(
      "proc p[exe_name = \"CMD.exe\", exe_name = \"cmd.EXE\"] "
      "write ip i as e return p");
  EXPECT_EQ(Find(diags, "SA001"), nullptr) << Render(diags);
}

TEST(AnalysisLintTest, SA002GlobalConstraintRefutesPattern) {
  auto diags = Lint(
      "subject_exe_name = \"cmd.exe\"\n"
      "proc p[\"%osql.exe\"] write file f as e return p");
  const Diagnostic* d = Find(diags, "SA002");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("can never match"), std::string::npos);
}

TEST(AnalysisLintTest, SA002GlobalReadsAttributeObjectTypeLacks) {
  // `object_path` is always-false against a network object, so the
  // pattern is dead.
  auto diags = Lint(
      "object_path = \"%backup1.dmp\"\n"
      "proc p write ip i as e return p");
  const Diagnostic* d = Find(diags, "SA002");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("do not carry"), std::string::npos);
}

TEST(AnalysisLintTest, SA002GlobalConsistentWithPatternIsClean) {
  auto diags = Lint(
      "subject_exe_name = \"cmd.exe\"\n"
      "proc p[\"%cmd.exe\"] write file f as e return p");
  EXPECT_EQ(Find(diags, "SA002"), nullptr) << Render(diags);
}

TEST(AnalysisLintTest, SA003ImplausibleOpObjectPair) {
  // No collector starts a *file*: the op alternation misses the file
  // object's schema envelope entirely.
  auto diags = Lint("proc p start file f as e return p");
  const Diagnostic* d = Find(diags, "SA003");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("dead pattern"), std::string::npos);
}

TEST(AnalysisLintTest, SA003AlternationWithOnePlausibleOpIsClean) {
  // `start || write` against a file: write is plausible, so the pattern
  // can still receive events.
  auto diags = Lint("proc p start || write file f as e return p");
  EXPECT_EQ(Find(diags, "SA003"), nullptr) << Render(diags);
}

TEST(AnalysisLintTest, SA010SubSecondWindow) {
  auto diags = Lint(
      "proc p write ip i as evt\n"
      "#time(500 ms)\n"
      "state ss { a := avg(evt.amount) } group by p\n"
      "alert ss[0].a > 10\n"
      "return p");
  const Diagnostic* d = Find(diags, "SA010");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("granularity"), std::string::npos);
}

TEST(AnalysisLintTest, SA010GappedSlide) {
  auto diags = Lint(
      "proc p write ip i as evt\n"
      "#time(10 s, 30 s)\n"
      "state ss { a := avg(evt.amount) } group by p\n"
      "alert ss[0].a > 10\n"
      "return p");
  const Diagnostic* d = Find(diags, "SA010");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_NE(d->message.find("gapped window"), std::string::npos);
}

TEST(AnalysisLintTest, SA011ConstantAggregate) {
  auto diags = Lint(
      "proc p write ip i as evt\n"
      "#time(10 min)\n"
      "state ss { a := avg(100) } group by p\n"
      "alert ss[0].a > 10\n"
      "return p");
  const Diagnostic* d = Find(diags, "SA011");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(AnalysisLintTest, SA012UngroupedInvariant) {
  auto diags = Lint(
      "proc p1[\"%apache.exe\"] start proc p2 as evt\n"
      "#time(10 s)\n"
      "state ss { set_proc := set(p2.exe_name) }\n"
      "invariant[10][offline] {\n"
      "  a := empty_set\n"
      "  a = a union ss.set_proc\n"
      "}\n"
      "alert |ss.set_proc diff a| > 0\n"
      "return ss.set_proc");
  const Diagnostic* d = Find(diags, "SA012");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("empty group key"), std::string::npos);
}

TEST(AnalysisLintTest, SA020MatchEverythingPattern) {
  auto diags = Lint("proc p[\"%\"] write ip i as e return p");
  const Diagnostic* d = Find(diags, "SA020");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kHint);
  EXPECT_NE(d->message.find("matches every value"), std::string::npos);
}

TEST(AnalysisLintTest, SA020DuplicateConstraint) {
  auto diags = Lint(
      "proc p[exe_name = \"a.exe\", exe_name = \"a.exe\"] "
      "write ip i as e return p");
  const Diagnostic* d = Find(diags, "SA020");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_NE(d->message.find("duplicate"), std::string::npos);
  // Same value twice is redundant, not contradictory.
  EXPECT_EQ(Find(diags, "SA001"), nullptr) << Render(diags);
}

TEST(AnalysisLintTest, SA021ConstantAlertCondition) {
  auto diags = Lint(
      "proc p write ip i as evt\n"
      "#time(10 min)\n"
      "state ss { a := avg(evt.amount) } group by p\n"
      "alert 2 > 1\n"
      "return p");
  const Diagnostic* d = Find(diags, "SA021");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kHint);
}

TEST(AnalysisLintTest, SA030PlacementNoteOnEveryQuery) {
  auto diags = Lint("proc p write ip i as e return p");
  const Diagnostic* d = Find(diags, "SA030");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->message.find("partitionable"), std::string::npos);
}

TEST(AnalysisLintTest, SA031PartitionableJoinKey) {
  // p1 is the *subject* of both patterns: every contributing event shares
  // p1's (agent, pid) partition, so the join could run sharded.
  auto diags = Lint(
      "proc p1[\"%x.exe\"] write file f1 as e1\n"
      "proc p1 read ip i1 as e2\n"
      "with e1 -> e2\n"
      "return distinct p1");
  const Diagnostic* d = Find(diags, "SA031");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->message.find("'p1'"), std::string::npos);
  EXPECT_NE(d->message.find("eligible"), std::string::npos);
}

TEST(AnalysisLintTest, SA031NonPartitionableJoin) {
  // r1-style join: the two patterns bind different subjects, so there is
  // no common partition key.
  auto diags = Lint(ReadQueryFile("apt/r1_initial_compromise.saql"));
  const Diagnostic* d = Find(diags, "SA031");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_NE(d->message.find("no variable is the subject of every pattern"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Corpus gates: every checked-in query stays clean, and the rendered
// placement matches what the scheduler actually does.
// ---------------------------------------------------------------------------

TEST(AnalysisCorpusTest, AllCorpusQueriesLintWithoutErrorsOrWarnings) {
  for (const char* file : kCorpusFiles) {
    auto q = CompileQuery(ReadQueryFile(file), file);
    ASSERT_NE(q, nullptr) << file;
    auto diags = QueryAnalysis::Lint(*q);
    EXPECT_EQ(CountSeverity(diags, Severity::kError), 0u)
        << file << "\n" << Render(diags);
    EXPECT_EQ(CountSeverity(diags, Severity::kWarning), 0u)
        << file << "\n" << Render(diags);
    // The placement note is always present.
    EXPECT_NE(Find(diags, "SA030"), nullptr) << file;
  }
}

// The fleet-level companion gate: the corpus must also be free of
// cross-query redundancy — no two checked-in queries may be duplicates
// or subsume one another (the CI `saql_lint --fleet` gate pins the same
// invariant on the command line).
TEST(AnalysisCorpusTest, CorpusIsCleanUnderFleetAnalysis) {
  std::vector<FleetAnalysis::Member> members;
  for (const char* file : kCorpusFiles) {
    Result<AnalyzedQueryPtr> aq = CompileSaql(ReadQueryFile(file));
    ASSERT_TRUE(aq.ok()) << file << "\n" << aq.status();
    members.push_back({file, *aq});
  }
  FleetReport report = FleetAnalysis::Analyze(members);
  EXPECT_TRUE(report.relations.empty()) << report.ToString();
  EXPECT_FALSE(report.HasFindings()) << report.ToString();
  // The routing envelope is still populated (overlap is informational).
  EXPECT_FALSE(report.cells.empty());
}

// The intentionally duplicated fixture pair (kept outside the linted
// corpus) exercises the SA050 path over checked-in files end to end.
TEST(AnalysisCorpusTest, FixturePairDrawsSA050) {
  Result<AnalyzedQueryPtr> a =
      CompileSaql(ReadQueryFile("apt/fixtures/dup_dropper_write_a.saql"));
  Result<AnalyzedQueryPtr> b =
      CompileSaql(ReadQueryFile("apt/fixtures/dup_dropper_write_b.saql"));
  ASSERT_TRUE(a.ok() && b.ok());
  FleetReport report = FleetAnalysis::Analyze({{"a", *a}, {"b", *b}});
  ASSERT_EQ(report.relations.size(), 1u) << report.ToString();
  EXPECT_EQ(report.relations[0].kind, FleetRelation::Kind::kDuplicate);
  EXPECT_NE(Find(report.findings[1], "SA050"), nullptr);
}

TEST(AnalysisCorpusTest, ExplainPlacementMatchesSchedulerForEveryQuery) {
  for (const char* file : kCorpusFiles) {
    auto q = CompileQuery(ReadQueryFile(file), file);
    ASSERT_NE(q, nullptr) << file;
    PlacementRationale r = QueryAnalysis::ExplainPlacement(*q);
    EXPECT_EQ(r.mode, q->shard_mode()) << file;
    EXPECT_FALSE(r.reason.empty()) << file;
    EXPECT_EQ(r.is_join, q->analyzed().query->patterns.size() > 1) << file;
  }
}

TEST(AnalysisCorpusTest, PlacementModesPinned) {
  auto rule = CompileQuery(ReadQueryFile("query1_rule.saql"), "q1");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(QueryAnalysis::ExplainPlacement(*rule).mode,
            CompiledQuery::ShardMode::kGlobal);
  EXPECT_FALSE(QueryAnalysis::ExplainPlacement(*rule).join_partitionable);

  auto agg = CompileQuery(ReadQueryFile("query2_timeseries.saql"), "q2");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(QueryAnalysis::ExplainPlacement(*agg).mode,
            CompiledQuery::ShardMode::kPartitionableWithMerge);

  auto filter =
      CompileQuery("proc p[\"%cmd.exe\"] write file f as e return p", "f");
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(QueryAnalysis::ExplainPlacement(*filter).mode,
            CompiledQuery::ShardMode::kPartitionable);
}

TEST(AnalysisCorpusTest, PartitionableJoinRationaleNamesTheKey) {
  auto join = CompileQuery(
      "proc p1[\"%x.exe\"] write file f1 as e1\n"
      "proc p1 read ip i1 as e2\n"
      "with e1 -> e2\n"
      "return distinct p1",
      "join");
  ASSERT_NE(join, nullptr);
  PlacementRationale r = QueryAnalysis::ExplainPlacement(*join);
  EXPECT_EQ(r.mode, CompiledQuery::ShardMode::kGlobal);  // today's scheduler
  EXPECT_TRUE(r.is_join);
  EXPECT_TRUE(r.join_partitionable);
  EXPECT_EQ(r.join_key_var, "p1");
}

// ---------------------------------------------------------------------------
// Engine/session enforcement: errors reject (state untouched), non-error
// findings attach to the handle.
// ---------------------------------------------------------------------------

TEST(AnalysisEnforcementTest, EngineAddQueryRejectsUnsatisfiableQuery) {
  SaqlEngine engine;
  std::vector<Diagnostic> diags;
  Status st = engine.AddQuery(
      "proc p[pid > 100, pid <= 50] write ip i as e return p", "bad",
      &diags);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("SA001"), std::string::npos)
      << st.ToString();
  EXPECT_TRUE(HasErrors(diags));
  // The engine is untouched: the same name registers a fixed query.
  EXPECT_EQ(engine.num_queries(), 0u);
  EXPECT_TRUE(engine
                  .AddQuery("proc p[pid > 100] write ip i as e return p",
                            "bad")
                  .ok());
  EXPECT_EQ(engine.num_queries(), 1u);
}

TEST(AnalysisEnforcementTest, EngineAddQueryPassesWarningsThrough) {
  SaqlEngine engine;
  std::vector<Diagnostic> diags;
  Status st = engine.AddQuery("proc p start file f as e return p", "warn",
                              &diags);
  EXPECT_TRUE(st.ok()) << st.ToString();  // warnings never reject
  EXPECT_NE(Find(diags, "SA003"), nullptr) << Render(diags);
  EXPECT_FALSE(HasErrors(diags));
}

TEST(AnalysisEnforcementTest, SessionAddQueryRejectionLeavesSessionIntact) {
  SaqlEngine engine;
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok());
  std::vector<Diagnostic> diags;
  auto handle = (*session)->AddQuery(
      "agentid = \"a\"\nagentid = \"b\"\nproc p write ip i as e return p",
      "dead", &diags);
  EXPECT_FALSE(handle.ok());
  EXPECT_TRUE(HasErrors(diags));
  EXPECT_EQ((*session)->num_active_queries(), 0u);
  EXPECT_EQ((*session)->handle("dead"), nullptr);
  // The session still accepts queries and events.
  auto good = (*session)->AddQuery(
      "proc p[\"%cmd.exe\"] write file f as e return p", "good");
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ((*session)->num_active_queries(), 1u);
  Event e = testing::EventBuilder()
                .Id(1)
                .At(kSecond)
                .OnHost("h1")
                .Subject("cmd.exe")
                .Op(EventOp::kWrite)
                .FileObject("/tmp/x")
                .Build();
  EXPECT_TRUE((*session)->Push(&e, 1).ok());
  EXPECT_TRUE((*session)->Close().ok());
}

TEST(AnalysisEnforcementTest, WarningsAttachToQueryHandle) {
  SaqlEngine engine;
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok());
  auto handle =
      (*session)->AddQuery("proc p start file f as e return p", "warn");
  ASSERT_TRUE(handle.ok()) << handle.status();
  const std::vector<Diagnostic>& attached = (*handle)->diagnostics();
  EXPECT_NE(Find(attached, "SA003"), nullptr) << Render(attached);
  EXPECT_NE(Find(attached, "SA030"), nullptr) << Render(attached);
  EXPECT_FALSE(HasErrors(attached));
  EXPECT_TRUE((*session)->Close().ok());
}

// ---------------------------------------------------------------------------
// No-false-positive property: generated queries that are satisfiable by
// construction never draw an error-severity finding (nor the dead-pattern
// warning SA003).
// ---------------------------------------------------------------------------

TEST(AnalysisPropertyTest, SatisfiableQueriesNeverDrawErrors) {
  std::mt19937 rng(0xC0FFEE);
  auto pick = [&](const std::vector<std::string>& pool) {
    return pool[rng() % pool.size()];
  };
  const std::vector<std::string> exe_pool = {"%cmd.exe", "%osql.exe",
                                             "%sqlservr.exe", "a.exe", "%"};
  const std::vector<std::string> path_pool = {"%backup1.dmp", "%.xls",
                                              "/tmp/%", "%"};
  const std::vector<std::string> ip_pool = {"%.129", "10.0.0.1", "%"};

  for (int iter = 0; iter < 300; ++iter) {
    std::ostringstream q;
    // Optional global constraint on a field no pattern constrains: cannot
    // contradict anything.
    if (rng() % 2 == 0) q << "agentid = \"host-" << rng() % 4 << "\"\n";

    // Subject: at most one exe_name value plus a non-empty pid interval.
    q << "proc p[exe_name = \"" << pick(exe_pool) << "\"";
    if (rng() % 2 == 0) {
      uint32_t lo = rng() % 1000;
      q << ", pid >= " << lo << ", pid <= " << lo + 1 + rng() % 1000;
    }
    q << "] ";

    // Object type with an op from its schema envelope.
    switch (rng() % 3) {
      case 0:
        q << (rng() % 2 == 0 ? "start" : "execute") << " proc q[\""
          << pick(exe_pool) << "\"]";
        break;
      case 1:
        q << (rng() % 2 == 0 ? "write" : "read") << " file f[\""
          << pick(path_pool) << "\"]";
        break;
      default:
        q << (rng() % 2 == 0 ? "write" : "connect") << " ip i[dstip = \""
          << pick(ip_pool) << "\"]";
        break;
    }
    q << " as e return p";

    auto compiled = CompileQuery(q.str(), "gen");
    ASSERT_NE(compiled, nullptr) << q.str();
    auto diags = QueryAnalysis::Lint(*compiled);
    EXPECT_EQ(CountSeverity(diags, Severity::kError), 0u)
        << q.str() << "\n" << Render(diags);
    EXPECT_EQ(Find(diags, "SA003"), nullptr)
        << q.str() << "\n" << Render(diags);
    // The dataflow pass must stay silent too: every generated constraint
    // is type-correct against the schema, every variable is constrained
    // or returned, and there is no state block or constant arithmetic.
    for (const char* code : {"SA040", "SA041", "SA042", "SA043"}) {
      EXPECT_EQ(Find(diags, code), nullptr)
          << code << "\n" << q.str() << "\n" << Render(diags);
    }
  }
}

// The seeded-corpus variant of the property: a query that demonstrably
// alerts on real events must never have been rejected. query1 fires on
// the APT replay in engine_test; here it is enough that the lint verdict
// for all corpus queries is error-free (checked above) *and* that a
// minimal known-alerting query stays clean end to end.
TEST(AnalysisPropertyTest, AlertingQueryIsErrorFree) {
  const std::string text =
      "proc p[\"%cmd.exe\"] write file f as e return distinct p, f";
  SaqlEngine engine;
  std::vector<Diagnostic> diags;
  ASSERT_TRUE(engine.AddQuery(text, "alerting", &diags).ok());
  EXPECT_FALSE(HasErrors(diags));
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok());
  Event e = testing::EventBuilder()
                .Id(1)
                .At(kSecond)
                .OnHost("h1")
                .Subject("cmd.exe")
                .Op(EventOp::kWrite)
                .FileObject("/tmp/out.dmp")
                .Build();
  ASSERT_TRUE((*session)->Push(&e, 1).ok());
  ASSERT_TRUE((*session)->AdvanceWatermark(2 * kSecond).ok());
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_GE(engine.alerts().size(), 1u);
}

}  // namespace
}  // namespace saql
