// FileBackend seam coverage: the POSIX backend's append/sync/close
// contract, and the fault-injection backend's three schedules (disk
// full, torn-write crash at a byte threshold, crash at a named trip
// point) — the machinery every durability test in the suite stands on.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "storage/file_backend.h"

namespace saql {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

TEST(FileBackendTest, RealBackendWritesBytes) {
  std::string path = TempPath("real_backend.bin");
  auto file = FileBackend::Real()->Create(path);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_TRUE((*file)->Append("hello ", 6).ok());
  EXPECT_TRUE((*file)->Append("world", 5).ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_EQ((*file)->bytes_written(), 11u);
  EXPECT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadFile(path), "hello world");
  EXPECT_TRUE(FileBackend::Real()->Delete(path).ok());
  EXPECT_FALSE(FileBackend::Real()->Delete(path).ok());  // already gone
}

TEST(FileBackendTest, OrRealResolvesNullToReal) {
  EXPECT_EQ(FileBackend::OrReal(nullptr), FileBackend::Real());
  FaultInjectionFileBackend fs;
  EXPECT_EQ(FileBackend::OrReal(&fs), &fs);
}

TEST(FaultInjectionTest, DiskFullFailsAppendsAtThreshold) {
  FaultInjectionFileBackend fs;
  fs.FailAppendsAfterBytes(10);
  auto file = fs.Create(TempPath("fault_full.bin"));
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("12345", 5).ok());
  EXPECT_TRUE((*file)->Append("12345", 5).ok());  // exactly at the limit
  Status st = (*file)->Append("x", 1);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // Sticky on the file handle.
  EXPECT_FALSE((*file)->Append("x", 1).ok());
  EXPECT_EQ(fs.bytes_appended(), 10u);
}

// The power-loss model: at the crash, a file keeps its prefix up to the
// torn-write threshold; files only keep *synced* bytes otherwise.
TEST(FaultInjectionTest, TornWriteCrashKeepsPrefixUpToThreshold) {
  std::string torn_path = TempPath("fault_torn.bin");
  std::string other_path = TempPath("fault_other.bin");
  FaultInjectionFileBackend fs;
  fs.CrashAfterBytes("fault_torn", 7);
  auto torn = fs.Create(torn_path);
  auto other = fs.Create(other_path);
  ASSERT_TRUE(torn.ok());
  ASSERT_TRUE(other.ok());

  EXPECT_TRUE((*other)->Append("abc", 3).ok());
  EXPECT_TRUE((*other)->Sync().ok());
  EXPECT_TRUE((*other)->Append("def", 3).ok());  // unsynced — will vanish

  EXPECT_TRUE((*torn)->Append("12345", 5).ok());
  Status st = (*torn)->Append("6789", 4);  // 5 + 4 > 7: torn at byte 7
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_TRUE(fs.crashed());

  EXPECT_EQ(ReadFile(torn_path), "1234567");
  EXPECT_EQ(ReadFile(other_path), "abc");  // truncated to synced bytes

  // The world stays frozen: every later operation fails.
  EXPECT_FALSE((*other)->Append("x", 1).ok());
  EXPECT_FALSE(fs.Create(TempPath("fault_post.bin")).ok());
  EXPECT_FALSE(fs.Delete(other_path).ok());
}

TEST(FaultInjectionTest, CrashAtNamedTripPoint) {
  std::string path = TempPath("fault_trip.bin");
  FaultInjectionFileBackend fs;
  fs.CrashAtTripPoint("checkpoint", /*occurrence=*/2);
  auto file = fs.Create(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("synced", 6).ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_TRUE((*file)->Append("lost", 4).ok());

  fs.TripPoint("other");       // different name: no crash
  fs.TripPoint("checkpoint");  // first occurrence: no crash
  EXPECT_FALSE(fs.crashed());
  fs.TripPoint("checkpoint");  // second occurrence: power loss
  EXPECT_TRUE(fs.crashed());
  EXPECT_EQ(fs.trip_count("checkpoint"), 2);
  EXPECT_EQ(fs.trip_count("other"), 1);
  EXPECT_EQ(fs.trip_count("never"), 0);

  EXPECT_EQ(ReadFile(path), "synced");  // unsynced tail gone
}

}  // namespace
}  // namespace saql
