// Interner lifecycle: size accounting for high-cardinality fields and the
// rotation hook for long-running deployments.

#include "core/interner.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

TEST(InternerTest, AccountingMatchesInsertedSpellings) {
  Interner interner;
  Interner::Stats empty = interner.stats();
  EXPECT_EQ(empty.entries, 0u);
  EXPECT_EQ(empty.bytes, 0u);

  std::vector<std::string> spellings = {
      "cmd.exe", "C:\\Windows\\Temp\\payload.bin", "alice", "db-server-01",
      "/var/log/syslog"};
  size_t expected_bytes = 0;
  for (const std::string& s : spellings) {
    interner.Intern(s);
    expected_bytes += s.size();  // normalization only lowercases
  }
  Interner::Stats st = interner.stats();
  EXPECT_EQ(st.entries, spellings.size());
  EXPECT_EQ(st.bytes, expected_bytes);

  // Re-interning (any case) adds nothing: same normalized spelling.
  interner.Intern("CMD.EXE");
  interner.Intern("Alice");
  st = interner.stats();
  EXPECT_EQ(st.entries, spellings.size());
  EXPECT_EQ(st.bytes, expected_bytes);

  // A genuinely new spelling is accounted at its normalized length.
  interner.Intern("EVIL.dll");
  st = interner.stats();
  EXPECT_EQ(st.entries, spellings.size() + 1);
  EXPECT_EQ(st.bytes, expected_bytes + std::string("evil.dll").size());
}

TEST(InternerTest, RotateResetsTableAndBumpsGeneration) {
  Interner interner;
  uint64_t gen0 = interner.stats().generation;
  uint32_t id = interner.Intern("stale-path");
  EXPECT_NE(id, Interner::kUnset);
  EXPECT_EQ(interner.Find("stale-path"), id);

  interner.Rotate();
  Interner::Stats st = interner.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.generation, gen0 + 1);
  EXPECT_EQ(interner.Find("stale-path"), Interner::kUnset);

  // Ids restart densely after rotation.
  EXPECT_EQ(interner.Intern("fresh"), 1u);
}

TEST(InternerTest, EventSpanReinternsAfterGlobalRotation) {
  // Event buffers survive a rotation: InternEventSpan re-interns events
  // stamped with an older generation instead of trusting stale ids.
  EventBatch events;
  events.push_back(EventBuilder()
                       .At(1)
                       .OnHost("h1")
                       .Subject("sqlservr.exe", 7)
                       .Op(EventOp::kWrite)
                       .FileObject("/backup1.dmp")
                       .Build());
  InternEventSpan(events.data(), events.size());
  uint32_t gen_before = events[0].syms.gen;
  uint32_t path_before = events[0].syms.obj_path;
  ASSERT_NE(path_before, Interner::kUnset);
  EXPECT_EQ(Interner::Global().NameOf(path_before), "/backup1.dmp");

  // Memoized: a second pass does not re-stamp.
  InternEventSpan(events.data(), events.size());
  EXPECT_EQ(events[0].syms.gen, gen_before);

  Interner::Global().Rotate();
  InternEventSpan(events.data(), events.size());
  EXPECT_EQ(events[0].syms.gen, gen_before + 1);
  EXPECT_EQ(Interner::Global().NameOf(events[0].syms.obj_path),
            "/backup1.dmp");
}

}  // namespace
}  // namespace saql
