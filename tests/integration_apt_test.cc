// End-to-end reproduction of the paper's demonstration (§III): the 8 SAQL
// queries — one rule query per attack step plus three advanced anomaly
// queries constructed without attack knowledge — run concurrently over the
// enterprise stream with the five-step APT attack injected, and each must
// detect its step.

#include <map>

#include <gtest/gtest.h>

#include "collect/enterprise_sim.h"
#include "engine/engine.h"
#include "test_util.h"

namespace saql {
namespace {

struct DemoRun {
  std::vector<Alert> alerts;
  std::map<std::string, CompiledQuery::QueryStats> stats;
  uint64_t events = 0;
  size_t groups = 0;
  std::string errors;
};

const char* const kDemoQueries[][2] = {
    {"r1-initial-compromise", "apt/r1_initial_compromise.saql"},
    {"r2-malware-infection", "apt/r2_malware_infection.saql"},
    {"r3-privilege-escalation", "apt/r3_privilege_escalation.saql"},
    {"r4-penetration", "apt/r4_penetration.saql"},
    {"r5-exfiltration", "query1_rule.saql"},
    {"a6-invariant-excel", "apt/a6_invariant_excel.saql"},
    {"a7-timeseries-network", "apt/a7_timeseries_network.saql"},
    {"a8-outlier-dbscan", "apt/a8_outlier_dbscan.saql"},
};

DemoRun RunDemo(bool include_attack, bool grouping = true) {
  EnterpriseSimulator::Options opts;
  opts.num_workstations = 3;
  opts.duration = 30 * kMinute;
  opts.events_per_host_per_second = 10;
  opts.attack_offset = 12 * kMinute;
  opts.include_attack = include_attack;
  opts.seed = 20200227;
  EnterpriseSimulator sim(opts);
  auto source = sim.MakeSource();

  SaqlEngine::Options eopts;
  eopts.enable_grouping = grouping;
  SaqlEngine engine(eopts);
  for (const auto& [name, file] : kDemoQueries) {
    Status st = engine.AddQuery(testing::ReadQueryFile(file), name);
    EXPECT_TRUE(st.ok()) << name << ": " << st;
  }
  Status st = engine.Run(source.get());
  EXPECT_TRUE(st.ok()) << st;

  DemoRun run;
  run.alerts = engine.alerts();
  for (const auto& [name, qs] : engine.query_stats()) {
    run.stats[name] = qs;
  }
  run.events = engine.executor_stats().events;
  run.groups = engine.num_groups();
  run.errors = engine.errors().ToString();
  return run;
}

size_t CountAlerts(const DemoRun& run, const std::string& query) {
  size_t n = 0;
  for (const Alert& a : run.alerts) {
    if (a.query_name == query) ++n;
  }
  return n;
}

class AptDemoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    attack_run_ = new DemoRun(RunDemo(/*include_attack=*/true));
    clean_run_ = new DemoRun(RunDemo(/*include_attack=*/false));
  }
  static void TearDownTestSuite() {
    delete attack_run_;
    delete clean_run_;
    attack_run_ = nullptr;
    clean_run_ = nullptr;
  }

  static DemoRun* attack_run_;
  static DemoRun* clean_run_;
};

DemoRun* AptDemoTest::attack_run_ = nullptr;
DemoRun* AptDemoTest::clean_run_ = nullptr;

TEST_F(AptDemoTest, StreamIsSubstantial) {
  EXPECT_GT(attack_run_->events, 100000u);
}

TEST_F(AptDemoTest, Step1InitialCompromiseDetected) {
  ASSERT_EQ(CountAlerts(*attack_run_, "r1-initial-compromise"), 1u);
  for (const Alert& a : attack_run_->alerts) {
    if (a.query_name != "r1-initial-compromise") continue;
    EXPECT_EQ(a.values[1].second.AsString(), "66.77.88.129");
    EXPECT_NE(a.values[2].second.AsString().find(".xls"),
              std::string::npos);
  }
}

TEST_F(AptDemoTest, Step2MalwareInfectionDetected) {
  ASSERT_GE(CountAlerts(*attack_run_, "r2-malware-infection"), 1u);
  for (const Alert& a : attack_run_->alerts) {
    if (a.query_name != "r2-malware-infection") continue;
    EXPECT_EQ(a.values[0].second.AsString(), "excel.exe");
    EXPECT_EQ(a.values[3].second.AsString(), "sbblv.exe");
  }
}

TEST_F(AptDemoTest, Step3PrivilegeEscalationDetected) {
  EXPECT_GE(CountAlerts(*attack_run_, "r3-privilege-escalation"), 1u);
}

TEST_F(AptDemoTest, Step4PenetrationDetected) {
  EXPECT_GE(CountAlerts(*attack_run_, "r4-penetration"), 1u);
}

TEST_F(AptDemoTest, Step5ExfiltrationDetectedByQuery1) {
  ASSERT_GE(CountAlerts(*attack_run_, "r5-exfiltration"), 1u);
  for (const Alert& a : attack_run_->alerts) {
    if (a.query_name != "r5-exfiltration") continue;
    // return distinct p1, p2, p3, f1, p4, i1
    EXPECT_EQ(a.values[0].second.AsString(), "cmd.exe");
    EXPECT_EQ(a.values[1].second.AsString(), "osql.exe");
    EXPECT_EQ(a.values[2].second.AsString(), "sqlservr.exe");
    EXPECT_NE(a.values[3].second.AsString().find("backup1.dmp"),
              std::string::npos);
    EXPECT_EQ(a.values[4].second.AsString(), "sbblv.exe");
    EXPECT_EQ(a.values[5].second.AsString(), "66.77.88.129");
  }
}

TEST_F(AptDemoTest, InvariantQueryCatchesMshtaWithoutAttackKnowledge) {
  ASSERT_GE(CountAlerts(*attack_run_, "a6-invariant-excel"), 1u);
  bool saw_mshta = false;
  for (const Alert& a : attack_run_->alerts) {
    if (a.query_name != "a6-invariant-excel") continue;
    if (a.values[1].second.AsSet().count("mshta.exe")) saw_mshta = true;
  }
  EXPECT_TRUE(saw_mshta);
}

TEST_F(AptDemoTest, TimeSeriesQueryCatchesExfilVolume) {
  ASSERT_GE(CountAlerts(*attack_run_, "a7-timeseries-network"), 1u);
  bool saw_attack_proc = false;
  for (const Alert& a : attack_run_->alerts) {
    if (a.query_name != "a7-timeseries-network") continue;
    std::string proc = a.values[0].second.AsString();
    if (proc == "sbblv.exe" || proc == "sqlservr.exe") {
      saw_attack_proc = true;
    }
  }
  EXPECT_TRUE(saw_attack_proc);
}

TEST_F(AptDemoTest, OutlierQueryFlagsAttackerIp) {
  ASSERT_GE(CountAlerts(*attack_run_, "a8-outlier-dbscan"), 1u);
  for (const Alert& a : attack_run_->alerts) {
    if (a.query_name != "a8-outlier-dbscan") continue;
    EXPECT_EQ(a.values[0].second.AsString(), "66.77.88.129");
    EXPECT_GT(a.values[1].second.AsInt(), 1000000);
  }
}

TEST_F(AptDemoTest, CleanRunProducesNoRuleAlerts) {
  // Without the attack none of the rule queries can fire; the advanced
  // queries must not fire on benign traffic either with this workload.
  for (const auto& [name, file] : kDemoQueries) {
    (void)file;
    EXPECT_EQ(CountAlerts(*clean_run_, name), 0u)
        << name << " alerted on benign traffic";
  }
}

TEST_F(AptDemoTest, NoRuntimeErrors) {
  EXPECT_EQ(attack_run_->errors, "(no errors)") << attack_run_->errors;
  EXPECT_EQ(clean_run_->errors, "(no errors)") << clean_run_->errors;
}

TEST_F(AptDemoTest, SchedulerGroupsCompatibleDemoQueries) {
  // 8 queries must share structural groups (fewer groups than queries).
  EXPECT_LT(attack_run_->groups, 8u);
}

TEST_F(AptDemoTest, GroupingDoesNotChangeDetections) {
  DemoRun ungrouped = RunDemo(/*include_attack=*/true, /*grouping=*/false);
  for (const auto& [name, file] : kDemoQueries) {
    (void)file;
    EXPECT_EQ(CountAlerts(*attack_run_, name), CountAlerts(ungrouped, name))
        << name;
  }
}

TEST_F(AptDemoTest, DetectionLatencyWithinWindowBounds) {
  // Rule-query alerts carry the match completion time; they must fall
  // inside the attack interval (12min offset + 5 steps * 2min gaps).
  Timestamp start = 1582761600LL * kSecond;
  for (const Alert& a : attack_run_->alerts) {
    if (a.query_name[0] != 'r') continue;
    EXPECT_GE(a.ts, start + 12 * kMinute);
    EXPECT_LE(a.ts, start + 30 * kMinute);
  }
}

}  // namespace
}  // namespace saql
