// Integration: the engine over a disordered feed, repaired by
// ReorderingEventSource. Sequence (with) semantics are order-sensitive, so
// this is where stream disorder actually breaks detections.

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "stream/reorder_buffer.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

EventBatch SequencePlusNoise() {
  EventBatch events;
  // The two-step sequence, 10 seconds apart.
  events.push_back(EventBuilder()
                       .At(100 * kSecond)
                       .OnHost("h1")
                       .Subject("cmd.exe", 10)
                       .Op(EventOp::kStart)
                       .ProcObject("osql.exe", 11)
                       .Build());
  events.push_back(EventBuilder()
                       .At(110 * kSecond)
                       .OnHost("h1")
                       .Subject("sqlservr.exe", 12)
                       .Op(EventOp::kWrite)
                       .FileObject("/backup1.dmp")
                       .Amount(1000)
                       .Build());
  // Benign noise around them.
  for (int i = 0; i < 200; ++i) {
    events.push_back(EventBuilder()
                         .At((50 + i) * kSecond)
                         .OnHost("h1")
                         .Subject("chrome.exe", 20)
                         .Op(EventOp::kRead)
                         .FileObject("/cache")
                         .Build());
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.ts < b.ts; });
  return events;
}

const char* kSequenceQuery =
    "proc a[\"%cmd.exe\"] start proc b[\"%osql.exe\"] as e1 "
    "proc c[\"%sqlservr.exe\"] write file f as e2 "
    "with e1 -> e2 "
    "return a, b, f";

size_t RunAndCountAlerts(EventSource* source) {
  SaqlEngine engine;
  EXPECT_TRUE(engine.AddQuery(kSequenceQuery, "seq").ok());
  EXPECT_TRUE(engine.Run(source).ok());
  return engine.alerts().size();
}

/// Jitters timestamps by up to `amount`, then re-sorts by the *jittered
/// arrival order* (i.e., delivers in a wrong event-time order).
EventBatch DisorderedDelivery(EventBatch events, Duration amount,
                              uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Duration> jitter(0, amount);
  std::vector<std::pair<Timestamp, size_t>> arrival;
  for (size_t i = 0; i < events.size(); ++i) {
    arrival.emplace_back(events[i].ts + jitter(rng), i);
  }
  std::sort(arrival.begin(), arrival.end());
  EventBatch out;
  out.reserve(events.size());
  for (const auto& [ts, i] : arrival) out.push_back(events[i]);
  return out;
}

TEST(ReorderingSourceTest, OrderedBaselineDetects) {
  VectorEventSource source(SequencePlusNoise());
  EXPECT_EQ(RunAndCountAlerts(&source), 1u);
}

TEST(ReorderingSourceTest, DisorderCanBreakSequenceDetection) {
  // Deliver the e2 step before e1 (swap just those two events).
  EventBatch events = SequencePlusNoise();
  auto is_start = [](const Event& e) { return e.op == EventOp::kStart; };
  auto it1 = std::find_if(events.begin(), events.end(), is_start);
  auto it2 = std::find_if(events.begin(), events.end(), [](const Event& e) {
    return e.op == EventOp::kWrite && IsFileEvent(e) &&
           e.subject.exe_name == "sqlservr.exe";
  });
  ASSERT_TRUE(it1 != events.end() && it2 != events.end());
  std::iter_swap(it1, it2);
  VectorEventSource source(std::move(events));
  EXPECT_EQ(RunAndCountAlerts(&source), 0u);  // order matters for `with`
}

TEST(ReorderingSourceTest, ReorderingSourceRepairsDetection) {
  EventBatch disordered =
      DisorderedDelivery(SequencePlusNoise(), 5 * kSecond, 7);
  // Verify the delivery really is out of event-time order.
  bool out_of_order = false;
  for (size_t i = 1; i < disordered.size(); ++i) {
    if (disordered[i].ts < disordered[i - 1].ts) out_of_order = true;
  }
  ASSERT_TRUE(out_of_order);

  VectorEventSource inner(std::move(disordered));
  ReorderingEventSource source(&inner, /*max_delay=*/6 * kSecond);
  EXPECT_EQ(RunAndCountAlerts(&source), 1u);
  EXPECT_EQ(source.late_count(), 0u);
}

TEST(ReorderingSourceTest, OutputIsTimestampOrdered) {
  EventBatch disordered =
      DisorderedDelivery(SequencePlusNoise(), 3 * kSecond, 11);
  VectorEventSource inner(std::move(disordered));
  ReorderingEventSource source(&inner, 4 * kSecond);
  EventBatch batch, all;
  while (source.NextBatch(17, &batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(all.size(), SequencePlusNoise().size());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].ts, all[i].ts) << "position " << i;
  }
}

TEST(ReorderingSourceTest, EmptyInnerSource) {
  VectorEventSource inner((EventBatch()));
  ReorderingEventSource source(&inner, kSecond);
  EventBatch batch;
  EXPECT_FALSE(source.NextBatch(10, &batch));
}

TEST(ReorderingSourceTest, ZeroCopyDrainsInOrderWithoutLoss) {
  EventBatch disordered =
      DisorderedDelivery(SequencePlusNoise(), 3 * kSecond, 11);
  VectorEventSource inner(std::move(disordered));
  ReorderingEventSource source(&inner, 4 * kSecond);
  EventBatch all;
  size_t count = 0;
  while (Event* span = source.NextBatchZeroCopy(17, &count)) {
    ASSERT_GT(count, 0u);
    ASSERT_LE(count, 17u);
    all.insert(all.end(), span, span + count);
  }
  ASSERT_EQ(all.size(), SequencePlusNoise().size());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].ts, all[i].ts) << "position " << i;
  }
}

TEST(ReorderingSourceTest, RoutedAlertsIdenticalThroughZeroCopyDrain) {
  // The executor pulls exclusively through NextBatchZeroCopy; a repaired
  // disordered feed must produce the same routed alerts as the ordered
  // feed (previously the reordering source fell back to the copying
  // adapter — this pins the in-place drain to identical detections).
  auto run = [](EventSource* source) {
    SaqlEngine engine;  // routing + interning on (defaults)
    EXPECT_TRUE(engine.AddQuery(kSequenceQuery, "seq").ok());
    EXPECT_TRUE(engine.Run(source).ok());
    std::vector<std::string> rendered;
    for (const Alert& a : engine.alerts()) rendered.push_back(a.ToString());
    return rendered;
  };

  VectorEventSource ordered(SequencePlusNoise());
  std::vector<std::string> baseline = run(&ordered);
  ASSERT_EQ(baseline.size(), 1u);

  EventBatch disordered =
      DisorderedDelivery(SequencePlusNoise(), 5 * kSecond, 7);
  VectorEventSource inner(std::move(disordered));
  ReorderingEventSource repaired(&inner, 6 * kSecond);
  EXPECT_EQ(run(&repaired), baseline);
}

}  // namespace
}  // namespace saql
