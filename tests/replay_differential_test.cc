// Corpus differential for the storage/replay path: the engine's alerts
// over the checked-in query corpus must be bit-identical whether the
// stream comes from memory (VectorEventSource), a v1 row log, a v2
// columnar log (mmap'd zero-copy blocks), or a v2 log read buffered —
// at 1, 2, and 4 shards. Pins the v1→v2 migration: replaying an existing
// v1 log and a re-recorded v2 log must be indistinguishable downstream.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collect/enterprise_sim.h"
#include "engine/engine.h"
#include "storage/columnar_log.h"
#include "storage/event_log.h"
#include "storage/replayer.h"
#include "stream/event_source.h"
#include "test_util.h"

namespace saql {
namespace {

const char* const kCorpusQueries[][2] = {
    {"q1-exfiltration", "query1_rule.saql"},
    {"q2-timeseries", "query2_timeseries.saql"},
    {"q3-invariant", "query3_invariant.saql"},
    {"q4-outlier", "query4_outlier.saql"},
    {"r1-initial-compromise", "apt/r1_initial_compromise.saql"},
    {"r2-malware-infection", "apt/r2_malware_infection.saql"},
    {"r3-privilege-escalation", "apt/r3_privilege_escalation.saql"},
    {"r4-penetration", "apt/r4_penetration.saql"},
    {"a6-invariant-excel", "apt/a6_invariant_excel.saql"},
    {"a7-timeseries-network", "apt/a7_timeseries_network.saql"},
    {"a8-outlier-dbscan", "apt/a8_outlier_dbscan.saql"},
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

EventBatch Corpus() {
  EnterpriseSimulator::Options sopts;
  sopts.num_workstations = 2;
  sopts.duration = 15 * kMinute;
  sopts.events_per_host_per_second = 6;
  sopts.attack_offset = 6 * kMinute;
  sopts.include_attack = true;
  sopts.seed = 20200227;
  EnterpriseSimulator sim(sopts);
  return sim.Generate();
}

/// Runs the full corpus over `source`; returns the alert sequence (Run's
/// deterministic output order) plus per-query stats lines.
std::vector<std::string> RunEngineOver(EventSource* source, size_t shards) {
  SaqlEngine::Options eopts;
  eopts.num_shards = shards;
  SaqlEngine engine(eopts);
  for (const auto& [name, file] : kCorpusQueries) {
    Status st = engine.AddQuery(testing::ReadQueryFile(file), name);
    EXPECT_TRUE(st.ok()) << name << ": " << st;
  }
  Status st = engine.Run(source);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(engine.errors().ToString(), "(no errors)");
  std::vector<std::string> out;
  for (const Alert& a : engine.alerts()) out.push_back(a.ToString());
  for (const auto& [name, qs] : engine.query_stats()) {
    out.push_back(name + " in=" + std::to_string(qs.events_in) +
                  " matched=" + std::to_string(qs.matches) +
                  " windows=" + std::to_string(qs.windows_closed) +
                  " alerts=" + std::to_string(qs.alerts));
  }
  return out;
}

TEST(ReplayDifferentialTest, AllFormatsAllShardCountsBitIdentical) {
  EventBatch corpus = Corpus();
  std::string v1_path = TempPath("diff_v1.saqllog");
  std::string v2_path = TempPath("diff_v2.saqllog");
  ASSERT_TRUE(WriteEventLog(v1_path, corpus).ok());
  ColumnarLogWriter::Options wopts;
  wopts.segment_events = 2048;  // several segments over this corpus
  ASSERT_TRUE(WriteColumnarEventLog(v2_path, corpus, wopts).ok());

  for (size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(shards) + " shard(s)");
    VectorEventSource vec(corpus);
    std::vector<std::string> baseline = RunEngineOver(&vec, shards);
    ASSERT_FALSE(baseline.empty());

    StreamReplayer v1(v1_path, StreamReplayer::Filter{});
    ASSERT_TRUE(v1.status().ok());
    ASSERT_EQ(v1.format_version(), 1);
    EXPECT_EQ(RunEngineOver(&v1, shards), baseline) << "v1 row log";
    EXPECT_EQ(v1.replayed(), corpus.size());

    StreamReplayer::Filter mmap_filter;
    StreamReplayer v2(v2_path, mmap_filter);
    ASSERT_TRUE(v2.status().ok());
    ASSERT_EQ(v2.format_version(), 2);
    EXPECT_EQ(RunEngineOver(&v2, shards), baseline) << "v2 mmap";
    EXPECT_EQ(v2.replayed(), corpus.size());

    StreamReplayer::Filter buffered_filter;
    buffered_filter.use_mmap = false;
    StreamReplayer v2b(v2_path, buffered_filter);
    ASSERT_TRUE(v2b.status().ok());
    EXPECT_EQ(RunEngineOver(&v2b, shards), baseline) << "v2 buffered";
  }
}

// The filtered replay paths must agree across formats too (the host
// filter forces the v2 row-materializing path; the time range exercises
// the segment-skip seek).
TEST(ReplayDifferentialTest, FilteredReplayAgreesAcrossFormats) {
  EventBatch corpus = Corpus();
  std::string v1_path = TempPath("diff_f_v1.saqllog");
  std::string v2_path = TempPath("diff_f_v2.saqllog");
  ASSERT_TRUE(WriteEventLog(v1_path, corpus).ok());
  ColumnarLogWriter::Options wopts;
  wopts.segment_events = 512;
  ASSERT_TRUE(WriteColumnarEventLog(v2_path, corpus, wopts).ok());

  StreamReplayer::Filter filter;
  filter.start_ts = corpus.front().ts + 4 * kMinute;
  filter.end_ts = corpus.front().ts + 12 * kMinute;
  filter.hosts = {corpus.front().agent_id};

  auto drain = [](StreamReplayer* r) {
    EventBatch all, batch;
    while (r->NextBatch(777, &batch)) {
      all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
  };
  StreamReplayer v1(v1_path, filter);
  StreamReplayer v2(v2_path, filter);
  ASSERT_TRUE(v1.status().ok());
  ASSERT_TRUE(v2.status().ok());
  EventBatch from_v1 = drain(&v1);
  EventBatch from_v2 = drain(&v2);
  ASSERT_FALSE(from_v1.empty());
  ASSERT_EQ(from_v1.size(), from_v2.size());
  for (size_t i = 0; i < from_v1.size(); ++i) {
    EXPECT_EQ(from_v1[i].id, from_v2[i].id);
    EXPECT_EQ(from_v1[i].ts, from_v2[i].ts);
    EXPECT_EQ(from_v1[i].agent_id, from_v2[i].agent_id);
  }
  EXPECT_EQ(v1.replayed(), v2.replayed());
  EXPECT_EQ(v1.filtered_out() + v1.replayed(),
            v2.filtered_out() + v2.replayed());
}

}  // namespace
}  // namespace saql
