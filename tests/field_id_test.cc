// The compiled field-access layer: FieldId resolution must agree with the
// string-keyed path for every valid spelling, interning must give equality
// predicates exact symbol semantics, and an analyzed query must evaluate
// through the fast path only (zero string-keyed lookups per event).

#include <gtest/gtest.h>

#include "core/field_access.h"
#include "core/interner.h"
#include "engine/compiled_pattern.h"
#include "engine/engine.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

Event SampleEvent(EntityType object_type) {
  EventBuilder b;
  b.Id(42)
      .At(55 * kSecond)
      .OnHost("Host-1")
      .Subject("CMD.exe", 123)
      .Op(EventOp::kWrite)
      .Amount(999);
  switch (object_type) {
    case EntityType::kProcess:
      b.ProcObject("Child.exe", 456);
      break;
    case EntityType::kFile:
      b.FileObject("C:\\Data\\File.txt");
      break;
    case EntityType::kNetwork:
      b.NetObject("6.6.6.6", 443);
      break;
  }
  Event e = b.Build();
  e.subject.user = "SYSTEM";
  e.obj_proc.user = "alice";
  return e;
}

/// Every valid spelling per entity type (including aliases).
const char* const kProcessFields[] = {"exe_name", "name", "image", "pid",
                                      "user"};
const char* const kFileFields[] = {"name", "path"};
const char* const kNetworkFields[] = {"srcip", "src_ip", "sip",
                                      "dstip", "dst_ip", "dip",
                                      "sport", "src_port", "dport",
                                      "dst_port", "port", "protocol",
                                      "proto"};

TEST(FieldIdTest, EntityResolutionAgreesWithStringPathForEveryField) {
  struct Case {
    EntityType type;
    const char* const* fields;
    size_t count;
  };
  const Case cases[] = {
      {EntityType::kProcess, kProcessFields, std::size(kProcessFields)},
      {EntityType::kFile, kFileFields, std::size(kFileFields)},
      {EntityType::kNetwork, kNetworkFields, std::size(kNetworkFields)},
  };
  for (const Case& c : cases) {
    Event e = SampleEvent(c.type);
    for (size_t i = 0; i < c.count; ++i) {
      const std::string field = c.fields[i];
      FieldId id = ResolveEntityFieldId(c.type, field);
      ASSERT_NE(id, FieldId::kInvalid)
          << EntityTypeName(c.type) << "." << field;
      // Object role reads the entity of type c.type.
      Result<Value> by_name = GetEntityField(e, EntityRole::kObject, field);
      Result<Value> by_id = GetEntityField(e, EntityRole::kObject, id);
      ASSERT_TRUE(by_name.ok()) << field;
      ASSERT_TRUE(by_id.ok()) << field;
      EXPECT_TRUE(by_name->Equals(*by_id))
          << EntityTypeName(c.type) << "." << field << ": "
          << by_name->ToString() << " vs " << by_id->ToString();
    }
  }
  // Subject role (always a process).
  Event e = SampleEvent(EntityType::kFile);
  for (const char* field : kProcessFields) {
    FieldId id = ResolveEntityFieldId(EntityType::kProcess, field);
    Result<Value> by_name = GetEntityField(e, EntityRole::kSubject, field);
    Result<Value> by_id = GetEntityField(e, EntityRole::kSubject, id);
    ASSERT_TRUE(by_name.ok() && by_id.ok()) << field;
    EXPECT_TRUE(by_name->Equals(*by_id)) << field;
  }
}

TEST(FieldIdTest, EventResolutionAgreesWithStringPathForEveryField) {
  const char* const kEventFields[] = {
      "amount", "ts", "time", "timestamp", "agentid", "agent_id", "host",
      "op", "operation", "failed", "id",
      "subject_exe_name", "subject_name", "subject_image", "subject_pid",
      "subject_user"};
  for (EntityType type :
       {EntityType::kProcess, EntityType::kFile, EntityType::kNetwork}) {
    Event e = SampleEvent(type);
    for (const char* field : kEventFields) {
      FieldId id = ResolveEventFieldId(field);
      ASSERT_NE(id, FieldId::kInvalid) << field;
      Result<Value> by_name = GetEventField(e, field);
      Result<Value> by_id = GetEventField(e, id);
      ASSERT_TRUE(by_name.ok() && by_id.ok()) << field;
      EXPECT_TRUE(by_name->Equals(*by_id)) << field;
    }
  }
  // object_* passthroughs against the matching object type.
  struct ObjCase {
    EntityType type;
    const char* field;
  };
  const ObjCase obj_cases[] = {
      {EntityType::kProcess, "object_exe_name"},
      {EntityType::kProcess, "object_name"},
      {EntityType::kProcess, "object_pid"},
      {EntityType::kProcess, "object_user"},
      {EntityType::kFile, "object_name"},
      {EntityType::kFile, "object_path"},
      {EntityType::kNetwork, "object_srcip"},
      {EntityType::kNetwork, "object_dstip"},
      {EntityType::kNetwork, "object_sport"},
      {EntityType::kNetwork, "object_dport"},
      {EntityType::kNetwork, "object_protocol"},
  };
  for (const ObjCase& c : obj_cases) {
    Event e = SampleEvent(c.type);
    FieldId id = ResolveEventFieldId(c.field);
    ASSERT_NE(id, FieldId::kInvalid) << c.field;
    Result<Value> by_name = GetEventField(e, c.field);
    Result<Value> by_id = GetEventField(e, id);
    ASSERT_TRUE(by_name.ok() && by_id.ok()) << c.field;
    EXPECT_TRUE(by_name->Equals(*by_id)) << c.field;
  }
}

TEST(FieldIdTest, InvalidSpellingsStayInvalid) {
  EXPECT_EQ(ResolveEntityFieldId(EntityType::kProcess, "dstip"),
            FieldId::kInvalid);
  EXPECT_EQ(ResolveEntityFieldId(EntityType::kFile, "pid"),
            FieldId::kInvalid);
  EXPECT_EQ(ResolveEntityFieldId(EntityType::kNetwork, "exe_name"),
            FieldId::kInvalid);
  EXPECT_EQ(ResolveEventFieldId("bogus"), FieldId::kInvalid);
  EXPECT_EQ(ResolveEventFieldId("subject_dstip"), FieldId::kInvalid);
}

TEST(FieldIdTest, TypeMismatchedReadsReportNotFound) {
  Event e = SampleEvent(EntityType::kFile);
  // dstip of a file object: both paths must fail identically.
  Result<Value> by_name = GetEntityField(e, EntityRole::kObject, "dstip");
  Result<Value> by_id =
      GetEntityField(e, EntityRole::kObject, FieldId::kDstIp);
  EXPECT_FALSE(by_name.ok());
  EXPECT_FALSE(by_id.ok());
  EXPECT_EQ(by_name.status().code(), by_id.status().code());
}

TEST(InternerTest, CaseVariantsShareOneSymbol) {
  Interner& interner = Interner::Global();
  uint32_t a = interner.Intern("CMD.exe");
  uint32_t b = interner.Intern("cmd.EXE");
  uint32_t c = interner.Intern("cmd.exe");
  EXPECT_NE(a, Interner::kUnset);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(interner.NameOf(a), "cmd.exe");
  EXPECT_NE(interner.Intern("other.exe"), a);
  EXPECT_EQ(interner.Find("CMD.EXE"), a);
}

TEST(InternerTest, InternEventStringsFillsSlotsPerObjectType) {
  Event proc_evt = SampleEvent(EntityType::kProcess);
  InternEventStrings(&proc_evt);
  EXPECT_NE(proc_evt.syms.agent, 0u);
  EXPECT_NE(proc_evt.syms.subj_exe, 0u);
  EXPECT_NE(proc_evt.syms.subj_user, 0u);
  EXPECT_NE(proc_evt.syms.obj_exe, 0u);
  EXPECT_NE(proc_evt.syms.obj_user, 0u);
  EXPECT_EQ(proc_evt.syms.obj_path, 0u);

  Event file_evt = SampleEvent(EntityType::kFile);
  InternEventStrings(&file_evt);
  EXPECT_NE(file_evt.syms.obj_path, 0u);
  EXPECT_EQ(file_evt.syms.obj_exe, 0u);

  // Same exe name (case-insensitively) → same symbol.
  EXPECT_EQ(proc_evt.syms.subj_exe, file_evt.syms.subj_exe);
  EXPECT_EQ(GetEntitySymbol(file_evt, EntityRole::kSubject,
                            FieldId::kExeName),
            file_evt.syms.subj_exe);
}

TEST(InternerTest, ExactEqualityMatchesInternedAndPlainEventsAlike) {
  // Exact constraint → symbol compare on interned events, string fallback
  // otherwise; both must agree with LIKE semantics (case-insensitive).
  CompiledConstraint c("exe_name", ConstraintOp::kEq, Value("cmd.exe"),
                       EntityType::kProcess);
  Event e = SampleEvent(EntityType::kFile);  // subject CMD.exe
  EXPECT_TRUE(c.MatchesEntity(e, EntityRole::kSubject));
  InternEventStrings(&e);
  EXPECT_TRUE(c.MatchesEntity(e, EntityRole::kSubject));

  CompiledConstraint miss("exe_name", ConstraintOp::kEq, Value("other.exe"),
                          EntityType::kProcess);
  EXPECT_FALSE(miss.MatchesEntity(e, EntityRole::kSubject));

  CompiledConstraint ne("exe_name", ConstraintOp::kNe, Value("other.exe"),
                        EntityType::kProcess);
  EXPECT_TRUE(ne.MatchesEntity(e, EntityRole::kSubject));

  CompiledConstraint agent("agentid", ConstraintOp::kEq, Value("host-1"));
  EXPECT_TRUE(agent.MatchesEvent(e));
}

TEST(FieldIdFastPathTest, AnalyzedQueriesDoZeroStringKeyedLookupsPerEvent) {
  // A mix of every per-event evaluation feature: entity + global
  // constraints, multi-pattern matching, aggregates over entity/event
  // refs, entity and event-alias group keys, alert + return expressions.
  SaqlEngine engine;
  ASSERT_TRUE(engine
                  .AddQuery("agentid = \"h1\" "
                            "proc a[\"%cmd.exe\"] start proc b as e1 "
                            "proc c write file f[\"%.dmp\"] as e2 "
                            "with e1 -> e2 "
                            "alert e2.amount >= 0 "
                            "return distinct a, b, f, e2.amount",
                            "rule")
                  .ok());
  ASSERT_TRUE(engine
                  .AddQuery("proc p write ip i as e #time(5 s) "
                            "state ss { amt := sum(e.amount) "
                            "           n := count() } "
                            "group by p, e.agentid "
                            "alert ss.amt > 0 return p, ss.amt, ss.n",
                            "stateful")
                  .ok());
  EventBatch events;
  for (int i = 0; i < 20; ++i) {
    Timestamp ts = i * kSecond;
    events.push_back(EventBuilder()
                         .At(ts)
                         .OnHost("h1")
                         .Subject("cmd.exe", 7)
                         .Op(EventOp::kStart)
                         .ProcObject("osql.exe", 8)
                         .Build());
    events.push_back(EventBuilder()
                         .At(ts + kSecond / 4)
                         .OnHost("h1")
                         .Subject("sqlservr.exe", 9)
                         .Op(EventOp::kWrite)
                         .FileObject("C:\\backup1.dmp")
                         .Amount(100)
                         .Build());
    events.push_back(EventBuilder()
                         .At(ts + kSecond / 2)
                         .OnHost("h1")
                         .Subject("svc.exe", 10)
                         .Op(EventOp::kWrite)
                         .NetObject("1.2.3.4")
                         .Amount(50)
                         .Build());
  }
  VectorEventSource source(std::move(events));

  ResetStringKeyedFieldLookups();
  ASSERT_TRUE(engine.Run(&source).ok());
  EXPECT_EQ(StringKeyedFieldLookups(), 0u)
      << "per-event evaluation fell back to string-keyed field access";

  // The run actually exercised the paths we claim are compiled.
  ASSERT_FALSE(engine.alerts().empty());
  auto stats = engine.query_stats();
  EXPECT_GT(stats[0].second.matches, 0u);
  EXPECT_GT(stats[1].second.matches, 0u);
}

}  // namespace
}  // namespace saql
