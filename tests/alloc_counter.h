#ifndef SAQL_TESTS_ALLOC_COUNTER_H_
#define SAQL_TESTS_ALLOC_COUNTER_H_

#include <cstddef>

namespace saql {
namespace testing {

/// Process-wide heap allocation count, backed by the test binary's global
/// operator new replacement (tests/alloc_counter.cc). Allocation-free
/// regression tests (`LikeMatcher::Matches`, the exact-equality
/// un-interned fallback in `CompiledConstraint`) read it before and after
/// the hot-path call and assert the delta is zero.
std::size_t HeapAllocs();

}  // namespace testing
}  // namespace saql

#endif  // SAQL_TESTS_ALLOC_COUNTER_H_
