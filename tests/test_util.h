#ifndef SAQL_TESTS_TEST_UTIL_H_
#define SAQL_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/event.h"
#include "engine/compiled_query.h"

namespace saql {
namespace testing {

/// Reads one of the checked-in paper queries (queries/*.saql).
inline std::string ReadQueryFile(const std::string& filename) {
  std::ifstream in(std::string(SAQL_QUERY_DIR) + "/" + filename);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Fluent builder for events in tests.
class EventBuilder {
 public:
  EventBuilder& Id(uint64_t id) {
    event_.id = id;
    return *this;
  }
  EventBuilder& At(Timestamp ts) {
    event_.ts = ts;
    return *this;
  }
  EventBuilder& OnHost(std::string agent) {
    event_.agent_id = std::move(agent);
    return *this;
  }
  EventBuilder& Subject(std::string exe, int64_t pid = 100) {
    event_.subject.exe_name = std::move(exe);
    event_.subject.pid = pid;
    return *this;
  }
  EventBuilder& Op(EventOp op) {
    event_.op = op;
    return *this;
  }
  EventBuilder& FileObject(std::string path) {
    event_.object_type = EntityType::kFile;
    event_.obj_file.path = std::move(path);
    return *this;
  }
  EventBuilder& ProcObject(std::string exe, int64_t pid = 200) {
    event_.object_type = EntityType::kProcess;
    event_.obj_proc.exe_name = std::move(exe);
    event_.obj_proc.pid = pid;
    return *this;
  }
  EventBuilder& NetObject(std::string dst_ip, int64_t dst_port = 443) {
    event_.object_type = EntityType::kNetwork;
    event_.obj_net.dst_ip = std::move(dst_ip);
    event_.obj_net.dst_port = dst_port;
    event_.obj_net.src_ip = "10.0.0.1";
    event_.obj_net.src_port = 50000;
    return *this;
  }
  EventBuilder& Amount(int64_t amount) {
    event_.amount = amount;
    return *this;
  }
  Event Build() const { return event_; }

 private:
  Event event_{};
};

/// Compiles a SAQL query, failing the current test (non-fatally) on
/// error; returns null on failure.
inline std::unique_ptr<CompiledQuery> CompileQuery(const std::string& text,
                                                   const std::string& name) {
  Result<AnalyzedQueryPtr> aq = CompileSaql(text);
  EXPECT_TRUE(aq.ok()) << text << "\n" << aq.status();
  if (!aq.ok()) return nullptr;
  Result<std::unique_ptr<CompiledQuery>> q =
      CompiledQuery::Create(aq.value(), name);
  EXPECT_TRUE(q.ok()) << q.status();
  if (!q.ok()) return nullptr;
  return std::move(q).value();
}

// Brute-force member-matching oracle shared by the ConstraintIndex
// differential and property suites: both must compare the index against
// the SAME reference, or the two suites could silently disagree about
// what "correct" means. Mirrors the single-pattern CompiledQuery::OnEvent
// evaluation order (global constraints, then the pattern's constraints);
// the structural shape is assumed already checked by the group master.

inline bool BruteForcePassesGlobal(const CompiledQuery& q,
                                   const Event& event) {
  for (const CompiledConstraint& c : q.global_constraints()) {
    if (!c.MatchesEvent(event)) return false;
  }
  return true;
}

inline bool BruteForceMatches(const CompiledQuery& q, const Event& event) {
  return BruteForcePassesGlobal(q, event) &&
         q.patterns()[0].Matches(event);
}

/// Reads member bit `i` of a ConstraintIndex::MatchResult bitset.
inline bool BitAt(const std::vector<uint64_t>& bits, size_t i) {
  return (bits[i / 64] >> (i % 64)) & 1;
}

}  // namespace testing
}  // namespace saql

#endif  // SAQL_TESTS_TEST_UTIL_H_
