// Robustness: the parser must return ParseError (never crash, hang, or
// mis-report) on arbitrary junk — truncations, random token soups, and
// mutations of valid queries. A query system exposed to analysts sees a
// lot of malformed input.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "parser/analyzer.h"
#include "parser/parser.h"
#include "test_util.h"

namespace saql {
namespace {

TEST(ParserFuzzTest, EveryPrefixOfPaperQueriesIsHandled) {
  for (const char* file :
       {"query1_rule.saql", "query2_timeseries.saql",
        "query3_invariant.saql", "query4_outlier.saql"}) {
    std::string text = testing::ReadQueryFile(file);
    for (size_t len = 0; len <= text.size(); len += 7) {
      std::string prefix = text.substr(0, len);
      // Must terminate and produce either a valid query or a clean error.
      Result<Query> r = ParseSaql(prefix);
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kParseError) << prefix;
      }
    }
  }
}

TEST(ParserFuzzTest, RandomTokenSoup) {
  const char* fragments[] = {
      "proc",    "file",  "ip",     "p1",     "[",      "]",    "{",
      "}",       "(",     ")",      "\"%x\"", "10",     "min",  "as",
      "evt",     "with",  "->",     "state",  "ss",     ":=",   "=",
      "group",   "by",    "alert",  "return", "||",     "&&",   "cluster",
      "invariant", "|",   ".",      ",",      "read",   "write", "start",
      "#time",   "#count", "1.5",   "distinct", "union", "diff", "empty_set",
  };
  std::mt19937_64 rng(2020);
  std::uniform_int_distribution<size_t> pick(0, std::size(fragments) - 1);
  std::uniform_int_distribution<int> len(1, 60);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      text += fragments[pick(rng)];
      text += ' ';
    }
    Result<Query> r = ParseSaql(text);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError)
          << "trial " << trial << ": " << text;
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

TEST(ParserFuzzTest, RandomBytes) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> byte(1, 255);
  std::uniform_int_distribution<int> len(1, 200);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      text += static_cast<char>(byte(rng));
    }
    Result<Query> r = ParseSaql(text);
    // Random bytes virtually never form a valid query; either way the
    // parser must terminate with a definite result.
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(ParserFuzzTest, SingleCharacterDeletionsOfQuery1) {
  std::string text = testing::ReadQueryFile("query1_rule.saql");
  for (size_t i = 0; i < text.size(); i += 3) {
    std::string mutated = text;
    mutated.erase(i, 1);
    Result<Query> parsed = ParseSaql(mutated);
    if (parsed.ok()) {
      // Some deletions keep the query valid (e.g., inside a comment); it
      // must then also analyze without crashing.
      Result<AnalyzedQueryPtr> analyzed =
          AnalyzeQuery(std::move(parsed).value());
      if (!analyzed.ok()) {
        EXPECT_EQ(analyzed.status().code(), StatusCode::kSemanticError);
      }
    } else {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(ParserFuzzTest, DeeplyNestedParenthesesDoNotOverflowQuickly) {
  // 200 levels is far beyond real queries but must not crash.
  std::string expr(200, '(');
  expr += "1";
  expr += std::string(200, ')');
  Result<Query> r =
      ParseSaql("proc p read file f as e alert " + expr + " > 0 return p");
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(ParserFuzzTest, VeryLongIdentifier) {
  std::string name(10000, 'a');
  Result<Query> r =
      ParseSaql("proc " + name + " read file f as e return " + name);
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(ParserFuzzTest, ManyReturnItems) {
  std::string q = "proc p read file f as e return p";
  for (int i = 0; i < 500; ++i) q += ", p";
  Result<Query> r = ParseSaql(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->returns.size(), 501u);
}

/// Expression round-trip property: unparse(parse(e)) reparses to the same
/// rendering (fixed point after one round).
class ExprRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprRoundTrip, UnparseReparseIsStable) {
  std::string wrapper = "proc p read file f as e alert ";
  Result<Query> q1 = ParseSaql(wrapper + GetParam() + " return p");
  ASSERT_TRUE(q1.ok()) << q1.status();
  std::string rendered = q1->alert->ToString();
  Result<Query> q2 = ParseSaql(wrapper + rendered + " return p");
  ASSERT_TRUE(q2.ok()) << "rendering '" << rendered << "' failed to parse: "
                       << q2.status();
  EXPECT_EQ(q2->alert->ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, ExprRoundTrip,
    ::testing::Values(
        "1 + 2 * 3 == 7",
        "e.amount > 10 && !e.failed || p.exe_name == \"%cmd.exe\"",
        "|f.name union f.name| >= 1",
        "(e.amount + 1) * 2 - 3 / 4 % 5 != 0",
        "p.exe_name in f.name union f.name",
        "abs(e.amount) > sqrt(100) && pow(2, 3) < max2(9, 10)",
        "-e.amount < - 1"));

}  // namespace
}  // namespace saql
