// Every checked-in .saql file (the paper's Queries 1-4 and the demo's 8
// detection queries) must lex, parse, analyze, and compile into an
// executable query — guarding the corpus against language regressions.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "engine/compiled_query.h"
#include "parser/analyzer.h"

namespace saql {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           SAQL_QUERY_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".saql") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class QueryCorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(QueryCorpusTest, CompilesEndToEnd) {
  std::ifstream in(GetParam());
  ASSERT_TRUE(in.good()) << GetParam();
  std::ostringstream text;
  text << in.rdbuf();

  Result<AnalyzedQueryPtr> aq = CompileSaql(text.str());
  ASSERT_TRUE(aq.ok()) << GetParam() << ": " << aq.status();

  Result<std::unique_ptr<CompiledQuery>> q =
      CompiledQuery::Create(aq.value(), "corpus");
  ASSERT_TRUE(q.ok()) << GetParam() << ": " << q.status();

  // Structural sanity: every query returns something and declares at least
  // one pattern.
  EXPECT_FALSE(aq.value()->query->returns.empty());
  EXPECT_GE(aq.value()->NumPatterns(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllCheckedInQueries, QueryCorpusTest,
    ::testing::ValuesIn(CorpusFiles()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = std::filesystem::path(info.param).stem().string();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(QueryCorpusTest, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 11u);  // 4 paper + 7 demo queries
}

}  // namespace
}  // namespace saql
