#include <sstream>

#include <gtest/gtest.h>

#include "cli/shell.h"
#include "cli/table.h"
#include "test_util.h"

namespace saql {
namespace {

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable t({"query", "alerts"});
  t.AddRow({"q1", "3"});
  t.AddRow({"a-much-longer-name", "12"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| query"), std::string::npos);
  EXPECT_NE(out.find("| a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::string out = t.Render();
  EXPECT_EQ(t.num_rows(), 1u);
  // Renders without crashing and keeps the column count.
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

class ShellHarness {
 public:
  ShellHarness() : shell_(in_, out_) {}

  std::string Run(const std::string& command) {
    out_.str("");
    shell_.Execute(command);
    return out_.str();
  }

  QueryShell& shell() { return shell_; }

 private:
  std::istringstream in_;
  std::ostringstream out_;
  QueryShell shell_{in_, out_};
};

TEST(QueryShellTest, HelpListsCommands) {
  ShellHarness h;
  std::string out = h.Run("help");
  EXPECT_NE(out.find("simulate"), std::string::npos);
  EXPECT_NE(out.find("replay"), std::string::npos);
}

TEST(QueryShellTest, UnknownCommandSuggestsHelp) {
  ShellHarness h;
  EXPECT_NE(h.Run("frobnicate").find("help"), std::string::npos);
}

TEST(QueryShellTest, InlineQueryRegistration) {
  ShellHarness h;
  std::string out =
      h.Run("query exfil proc p write ip i as e return p, i");
  EXPECT_NE(out.find("registered"), std::string::npos);
  EXPECT_EQ(h.shell().queries().count("exfil"), 1u);
}

TEST(QueryShellTest, InvalidInlineQueryRejected) {
  ShellHarness h;
  std::string out = h.Run("query broken this is not saql");
  EXPECT_NE(out.find("rejected"), std::string::npos);
  EXPECT_TRUE(h.shell().queries().empty());
}

TEST(QueryShellTest, LoadQueryFile) {
  ShellHarness h;
  std::string path = std::string(SAQL_QUERY_DIR) + "/query1_rule.saql";
  std::string out = h.Run("load " + path + " q1");
  EXPECT_NE(out.find("loaded"), std::string::npos);
  EXPECT_EQ(h.shell().queries().count("q1"), 1u);
}

TEST(QueryShellTest, LoadMissingFileFails) {
  ShellHarness h;
  EXPECT_NE(h.Run("load /no/such/file.saql").find("cannot open"),
            std::string::npos);
}

TEST(QueryShellTest, LintCommandReportsDiagnostics) {
  ShellHarness h;
  std::string out = h.Run("lint");
  EXPECT_NE(out.find("usage: lint"), std::string::npos);
  // Corpus file: clean except the placement note.
  std::string path = std::string(SAQL_QUERY_DIR) + "/query1_rule.saql";
  out = h.Run("lint " + path);
  EXPECT_NE(out.find("SA030"), std::string::npos);
  EXPECT_NE(out.find("0 error(s), 0 warning(s)"), std::string::npos);
  EXPECT_NE(h.Run("lint /no/such.saql").find("cannot open"),
            std::string::npos);
}

TEST(QueryShellTest, ExplainShowsPlacementRationale) {
  ShellHarness h;
  EXPECT_NE(h.Run("explain nothere").find("no query named"),
            std::string::npos);
  h.Run("query exfil proc p[\"%sbblv.exe\"] write ip i as e "
        "return distinct p, i");
  std::string out = h.Run("explain exfil");
  EXPECT_NE(out.find("placement: partitionable"), std::string::npos);
  std::string path = std::string(SAQL_QUERY_DIR) + "/query1_rule.saql";
  h.Run("load " + path + " q1");
  out = h.Run("explain q1");
  EXPECT_NE(out.find("placement: global"), std::string::npos);
  EXPECT_NE(out.find("join-key analysis"), std::string::npos);
}

TEST(QueryShellTest, HelpListsLintFleetAndExplain) {
  ShellHarness h;
  std::string out = h.Run("help");
  EXPECT_NE(out.find("lint [file...]"), std::string::npos);
  EXPECT_NE(out.find("fleet"), std::string::npos);
  EXPECT_NE(out.find("explain <name>"), std::string::npos);
}

TEST(QueryShellTest, LintWithoutArgsLintsRegisteredQueries) {
  ShellHarness h;
  h.Run("query dead proc p start file f as e return p");
  std::string out = h.Run("lint");
  // The registered query's name heads its findings; SA003 (dead pattern)
  // and SA041 (unused f) both surface.
  EXPECT_NE(out.find("dead"), std::string::npos);
  EXPECT_NE(out.find("SA003"), std::string::npos);
  EXPECT_NE(out.find("SA041"), std::string::npos);
}

TEST(QueryShellTest, FixtureDuplicatePairDrawsSA050EndToEnd) {
  // The intentionally duplicated pair under queries/apt/fixtures/ (kept
  // out of the linted corpus): loading both and running `fleet` must
  // surface the SA050 double-alerting warning through the CLI layer.
  ShellHarness h;
  std::string dir = std::string(SAQL_QUERY_DIR) + "/apt/fixtures/";
  EXPECT_NE(h.Run("load " + dir + "dup_dropper_write_a.saql dup_a")
                .find("loaded"),
            std::string::npos);
  EXPECT_NE(h.Run("load " + dir + "dup_dropper_write_b.saql dup_b")
                .find("loaded"),
            std::string::npos);
  std::string out = h.Run("fleet");
  EXPECT_NE(out.find("SA050"), std::string::npos) << out;
  EXPECT_NE(out.find("'dup_b' duplicates 'dup_a'"), std::string::npos) << out;
  EXPECT_NE(out.find("exact duplicate of fleet query 'dup_a'"),
            std::string::npos)
      << out;
}

TEST(QueryShellTest, FleetCommandReportsCrossQueryRelations) {
  ShellHarness h;
  EXPECT_NE(h.Run("fleet").find("no queries"), std::string::npos);
  h.Run("query qa proc p[\"%m.exe\"] write file f as e return p, f");
  h.Run("query qb proc q[\"%M.EXE\"] write file g as ev return q, g");
  std::string out = h.Run("fleet");
  EXPECT_NE(out.find("2 query(ies), 1 relation(s)"), std::string::npos);
  EXPECT_NE(out.find("SA050"), std::string::npos);
  EXPECT_NE(out.find("duplicates"), std::string::npos);
  EXPECT_NE(out.find("file/write: 2"), std::string::npos);
}

TEST(QueryShellTest, SimulateWithoutQueriesWarns) {
  ShellHarness h;
  EXPECT_NE(h.Run("simulate 1").find("no queries"), std::string::npos);
}

TEST(QueryShellTest, SimulateRunsAndReportsAlerts) {
  ShellHarness h;
  h.Run("query exfil proc p[\"%sbblv.exe\"] write ip i as e "
        "return distinct p, i");
  std::string out = h.Run("simulate 16");
  EXPECT_NE(out.find("run complete"), std::string::npos);
  EXPECT_FALSE(h.shell().alerts().empty());
  // Alerts table works afterwards.
  std::string alerts = h.Run("alerts");
  EXPECT_NE(alerts.find("exfil"), std::string::npos);
}

TEST(QueryShellTest, StatsAvailableAfterRun) {
  ShellHarness h;
  EXPECT_NE(h.Run("stats").find("no run yet"), std::string::npos);
  h.Run("query q proc p read file f as e alert e.amount > 999999999 "
        "return p");
  h.Run("simulate 1");
  std::string stats = h.Run("stats");
  EXPECT_NE(stats.find("events="), std::string::npos);
  EXPECT_NE(stats.find("q:"), std::string::npos);
}

TEST(QueryShellTest, RecordAndReplayRoundTrip) {
  ShellHarness h;
  std::string log = ::testing::TempDir() + "/shell_demo.saqllog";
  std::string out = h.Run("record " + log + " 1");
  EXPECT_NE(out.find("recorded"), std::string::npos);
  h.Run("query any proc p write ip i as e alert e.amount > 100000000 "
        "return p");
  out = h.Run("replay " + log);
  EXPECT_NE(out.find("run complete"), std::string::npos);
}

TEST(QueryShellTest, QuitStopsLoop) {
  std::istringstream in("help\nquit\n");
  std::ostringstream out;
  QueryShell shell(in, out);
  shell.Run();  // must terminate
  EXPECT_NE(out.str().find("bye"), std::string::npos);
}

TEST(QueryShellTest, AlertsEmptyBeforeRun) {
  ShellHarness h;
  EXPECT_NE(h.Run("alerts").find("no alerts"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live-session mode.

TEST(QueryShellLiveTest, PushRequiresOpenSession) {
  ShellHarness h;
  EXPECT_NE(h.Run("push 1").find("no live session"), std::string::npos);
  EXPECT_NE(h.Run("close").find("no live session"), std::string::npos);
  EXPECT_NE(h.Run("session").find("no live session"), std::string::npos);
}

TEST(QueryShellLiveTest, FullLifecycleScript) {
  ShellHarness h;
  h.Run("query exfil proc p[\"%sbblv.exe\"] write ip i as e "
        "return distinct p, i");

  std::string out = h.Run("open");
  EXPECT_NE(out.find("session open"), std::string::npos);
  EXPECT_TRUE(h.shell().session_open());

  // A second concurrent open succeeds, becomes current, and closes
  // independently — the first session keeps streaming.
  std::string out2 = h.Run("open");
  EXPECT_NE(out2.find("now current"), std::string::npos);
  EXPECT_EQ(h.shell().open_session_count(), 2u);
  out2 = h.Run("sessions");
  EXPECT_NE(out2.find("2 live sessions"), std::string::npos);
  out2 = h.Run("close");
  EXPECT_NE(out2.find("still open"), std::string::npos);
  EXPECT_EQ(h.shell().open_session_count(), 1u);

  // The APT attack starts 12 minutes in; 16 minutes of traffic alerts.
  out = h.Run("push 16");
  EXPECT_NE(out.find("pushed"), std::string::npos);
  EXPECT_NE(out.find("ALERT exfil"), std::string::npos);
  EXPECT_FALSE(h.shell().alerts().empty());
  size_t alerts_after_first = h.shell().alerts().size();

  // Attach a query mid-stream; it participates in the next push.
  out = h.Run("add osql proc p[\"%osql.exe\"] start proc q as e "
              "return p, q");
  EXPECT_NE(out.find("attached query 'osql' mid-stream"),
            std::string::npos);
  EXPECT_EQ(h.shell().queries().count("osql"), 1u);

  out = h.Run("push 8");
  EXPECT_NE(out.find("pushed"), std::string::npos);

  out = h.Run("session");
  EXPECT_NE(out.find("2 active queries"), std::string::npos);

  // Live stats include both queries.
  out = h.Run("stats");
  EXPECT_NE(out.find("events="), std::string::npos);
  EXPECT_NE(out.find("exfil:"), std::string::npos);
  EXPECT_NE(out.find("osql:"), std::string::npos);

  // Retract mid-stream: final stats are reported and retained.
  out = h.Run("remove exfil");
  EXPECT_NE(out.find("removed query 'exfil'"), std::string::npos);
  EXPECT_NE(out.find("final:"), std::string::npos);
  EXPECT_EQ(h.shell().queries().count("exfil"), 0u);

  out = h.Run("close");
  EXPECT_NE(out.find("session closed"), std::string::npos);
  EXPECT_FALSE(h.shell().session_open());
  EXPECT_GE(h.shell().alerts().size(), alerts_after_first);

  // Post-close, `stats` serves the session's final snapshot.
  out = h.Run("stats");
  EXPECT_NE(out.find("exfil:"), std::string::npos);
}

TEST(QueryShellLiveTest, ShardedSessionViaFlag) {
  ShellHarness h;
  h.Run("query exfil proc p[\"%sbblv.exe\"] write ip i as e "
        "return distinct p, i");
  std::string out = h.Run("open --shards=2");
  EXPECT_NE(out.find("2 shard lanes"), std::string::npos);
  out = h.Run("push 16");
  EXPECT_NE(out.find("ALERT exfil"), std::string::npos);
  EXPECT_NE(h.Run("close").find("session closed"), std::string::npos);
}

TEST(QueryShellLiveTest, SessionAddressingTargetsById) {
  ShellHarness h;
  h.Run("query exfil proc p[\"%sbblv.exe\"] write ip i as e "
        "return distinct p, i");
  h.Run("open");
  h.Run("open --shards=2");
  EXPECT_EQ(h.shell().open_session_count(), 2u);

  // Explicit #1 pushes into the first session and selects it as current.
  std::string out = h.Run("push #1 16");
  EXPECT_NE(out.find("session #1 total"), std::string::npos);

  out = h.Run("session #2");
  EXPECT_NE(out.find("session #2 (current)"), std::string::npos);
  EXPECT_NE(out.find("0 events pushed"), std::string::npos);

  EXPECT_NE(h.Run("push #7").find("no open session #7"),
            std::string::npos);

  // Close the current (#2); #1 becomes current again and closes last.
  EXPECT_NE(h.Run("close").find("still open"), std::string::npos);
  out = h.Run("close");
  EXPECT_NE(out.find("session closed"), std::string::npos);
  EXPECT_FALSE(h.shell().session_open());
}

TEST(QueryShellLiveTest, AddWithoutSessionRegisters) {
  ShellHarness h;
  std::string out = h.Run("add q proc p write ip i as e return p");
  EXPECT_NE(out.find("registered query 'q'"), std::string::npos);
  EXPECT_EQ(h.shell().queries().count("q"), 1u);
  // remove without a session unregisters.
  EXPECT_NE(h.Run("remove q").find("unregistered"), std::string::npos);
  EXPECT_TRUE(h.shell().queries().empty());
  EXPECT_NE(h.Run("remove q").find("no query"), std::string::npos);
}

// A mid-session `add` of a statically broken query must report the
// diagnostic list (not just a status blob) and leave the session state
// untouched: no phantom registration, later adds and pushes still work.
TEST(QueryShellLiveTest, AddRejectedByLintReportsDiagnosticsAndKeepsState) {
  ShellHarness h;
  h.Run("open");
  ASSERT_TRUE(h.shell().session_open());
  std::string out =
      h.Run("add dead proc p[pid > 100, pid <= 50] write ip i as e "
            "return p");
  EXPECT_NE(out.find("add failed"), std::string::npos);
  EXPECT_NE(out.find("SA001"), std::string::npos);
  EXPECT_NE(out.find("error"), std::string::npos);
  // Untouched: not registered in the shell, not active in the session.
  EXPECT_EQ(h.shell().queries().count("dead"), 0u);
  std::string status = h.Run("session");
  EXPECT_NE(status.find("0 active queries"), std::string::npos);
  // The session still accepts a good query and traffic after the reject.
  out = h.Run("add good proc p[\"%sbblv.exe\"] write ip i as e "
              "return distinct p, i");
  EXPECT_NE(out.find("attached query 'good'"), std::string::npos);
  EXPECT_NE(h.Run("push 4").find("pushed"), std::string::npos);
  h.Run("close");
}

// Warnings do not reject a mid-session add, but they print.
TEST(QueryShellLiveTest, AddWithWarningPrintsFindingAndAttaches) {
  ShellHarness h;
  h.Run("open");
  std::string out = h.Run("add warn proc p start file f as e return p");
  EXPECT_NE(out.find("SA003"), std::string::npos);
  EXPECT_NE(out.find("attached query 'warn'"), std::string::npos);
  EXPECT_EQ(h.shell().queries().count("warn"), 1u);
  h.Run("close");
}

// The settings satellite: `shards`/`index` changed while a live session
// runs must say they do not reconfigure it — and say when they do apply.
TEST(QueryShellLiveTest, ShardsAndIndexReportAgainstLiveSession) {
  ShellHarness h;
  h.Run("query q proc p write ip i as e return p");

  // No session: the report says the setting applies to the next run.
  std::string out = h.Run("shards 2");
  EXPECT_NE(out.find("applies to the next"), std::string::npos);
  out = h.Run("index off");
  EXPECT_NE(out.find("applies to the next"), std::string::npos);
  h.Run("index on");

  h.Run("open");
  ASSERT_TRUE(h.shell().session_open());
  out = h.Run("shards 4");
  EXPECT_NE(out.find("open sessions keep their lane counts"),
            std::string::npos);
  EXPECT_EQ(h.shell().num_shards(), 4u);  // setting recorded nonetheless
  out = h.Run("index off");
  EXPECT_NE(out.find("live session keeps its member-matching mode"),
            std::string::npos);
  EXPECT_FALSE(h.shell().member_index());
  h.Run("close");
}

TEST(QueryShellLiveTest, LoadDuringSessionPointsAtAdd) {
  ShellHarness h;
  h.Run("open");
  std::string path = std::string(SAQL_QUERY_DIR) + "/query1_rule.saql";
  std::string out = h.Run("load " + path + " q1");
  EXPECT_NE(out.find("use 'add'"), std::string::npos);
  h.Run("close");
}

}  // namespace
}  // namespace saql
