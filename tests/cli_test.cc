#include <sstream>

#include <gtest/gtest.h>

#include "cli/shell.h"
#include "cli/table.h"
#include "test_util.h"

namespace saql {
namespace {

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable t({"query", "alerts"});
  t.AddRow({"q1", "3"});
  t.AddRow({"a-much-longer-name", "12"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| query"), std::string::npos);
  EXPECT_NE(out.find("| a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::string out = t.Render();
  EXPECT_EQ(t.num_rows(), 1u);
  // Renders without crashing and keeps the column count.
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

class ShellHarness {
 public:
  ShellHarness() : shell_(in_, out_) {}

  std::string Run(const std::string& command) {
    out_.str("");
    shell_.Execute(command);
    return out_.str();
  }

  QueryShell& shell() { return shell_; }

 private:
  std::istringstream in_;
  std::ostringstream out_;
  QueryShell shell_{in_, out_};
};

TEST(QueryShellTest, HelpListsCommands) {
  ShellHarness h;
  std::string out = h.Run("help");
  EXPECT_NE(out.find("simulate"), std::string::npos);
  EXPECT_NE(out.find("replay"), std::string::npos);
}

TEST(QueryShellTest, UnknownCommandSuggestsHelp) {
  ShellHarness h;
  EXPECT_NE(h.Run("frobnicate").find("help"), std::string::npos);
}

TEST(QueryShellTest, InlineQueryRegistration) {
  ShellHarness h;
  std::string out =
      h.Run("query exfil proc p write ip i as e return p, i");
  EXPECT_NE(out.find("registered"), std::string::npos);
  EXPECT_EQ(h.shell().queries().count("exfil"), 1u);
}

TEST(QueryShellTest, InvalidInlineQueryRejected) {
  ShellHarness h;
  std::string out = h.Run("query broken this is not saql");
  EXPECT_NE(out.find("rejected"), std::string::npos);
  EXPECT_TRUE(h.shell().queries().empty());
}

TEST(QueryShellTest, LoadQueryFile) {
  ShellHarness h;
  std::string path = std::string(SAQL_QUERY_DIR) + "/query1_rule.saql";
  std::string out = h.Run("load " + path + " q1");
  EXPECT_NE(out.find("loaded"), std::string::npos);
  EXPECT_EQ(h.shell().queries().count("q1"), 1u);
}

TEST(QueryShellTest, LoadMissingFileFails) {
  ShellHarness h;
  EXPECT_NE(h.Run("load /no/such/file.saql").find("cannot open"),
            std::string::npos);
}

TEST(QueryShellTest, SimulateWithoutQueriesWarns) {
  ShellHarness h;
  EXPECT_NE(h.Run("simulate 1").find("no queries"), std::string::npos);
}

TEST(QueryShellTest, SimulateRunsAndReportsAlerts) {
  ShellHarness h;
  h.Run("query exfil proc p[\"%sbblv.exe\"] write ip i as e "
        "return distinct p, i");
  std::string out = h.Run("simulate 16");
  EXPECT_NE(out.find("run complete"), std::string::npos);
  EXPECT_FALSE(h.shell().alerts().empty());
  // Alerts table works afterwards.
  std::string alerts = h.Run("alerts");
  EXPECT_NE(alerts.find("exfil"), std::string::npos);
}

TEST(QueryShellTest, StatsAvailableAfterRun) {
  ShellHarness h;
  EXPECT_NE(h.Run("stats").find("no run yet"), std::string::npos);
  h.Run("query q proc p read file f as e alert e.amount > 999999999 "
        "return p");
  h.Run("simulate 1");
  std::string stats = h.Run("stats");
  EXPECT_NE(stats.find("events="), std::string::npos);
  EXPECT_NE(stats.find("q:"), std::string::npos);
}

TEST(QueryShellTest, RecordAndReplayRoundTrip) {
  ShellHarness h;
  std::string log = ::testing::TempDir() + "/shell_demo.saqllog";
  std::string out = h.Run("record " + log + " 1");
  EXPECT_NE(out.find("recorded"), std::string::npos);
  h.Run("query any proc p write ip i as e alert e.amount > 100000000 "
        "return p");
  out = h.Run("replay " + log);
  EXPECT_NE(out.find("run complete"), std::string::npos);
}

TEST(QueryShellTest, QuitStopsLoop) {
  std::istringstream in("help\nquit\n");
  std::ostringstream out;
  QueryShell shell(in, out);
  shell.Run();  // must terminate
  EXPECT_NE(out.str().find("bye"), std::string::npos);
}

TEST(QueryShellTest, AlertsEmptyBeforeRun) {
  ShellHarness h;
  EXPECT_NE(h.Run("alerts").find("no alerts"), std::string::npos);
}

}  // namespace
}  // namespace saql
