#include "anomaly/robust_stats.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 100), 7.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 17.5);
}

TEST(PercentileTest, UnsortedInputHandled) {
  std::vector<double> v{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(MadTest, KnownValue) {
  // median = 2, deviations {1,0,0,1,2} -> MAD = 1.
  EXPECT_DOUBLE_EQ(Mad({1, 2, 2, 3, 4}), 1.0);
}

TEST(MadTest, ConstantSeriesHasZeroMad) {
  EXPECT_DOUBLE_EQ(Mad({5, 5, 5, 5}), 0.0);
}

TEST(RobustZScoreTest, OutlierScoresHigh) {
  std::vector<double> v{10, 11, 9, 10, 12, 10, 9, 11};
  EXPECT_GT(RobustZScore(v, 100.0), 10.0);
  EXPECT_LT(RobustZScore(v, 10.0), 1.0);
}

TEST(RobustZScoreTest, ZeroMadGivesZero) {
  EXPECT_DOUBLE_EQ(RobustZScore({5, 5, 5}, 100.0), 0.0);
}

TEST(IqrOutlierTest, DetectsFarPoint) {
  std::vector<double> v{10, 11, 12, 13, 14, 15, 16, 17};
  EXPECT_TRUE(IqrOutlier(v, 100.0));
  EXPECT_FALSE(IqrOutlier(v, 13.0));
}

TEST(IqrOutlierTest, TooFewSamplesNeverOutlier) {
  EXPECT_FALSE(IqrOutlier({1, 2, 3}, 1000.0));
}

TEST(IqrOutlierTest, WiderFenceAdmitsMore) {
  std::vector<double> v{10, 11, 12, 13, 14, 15, 16, 17};
  double x = 22.0;
  EXPECT_TRUE(IqrOutlier(v, x, 1.0));
  EXPECT_FALSE(IqrOutlier(v, x, 3.0));
}

}  // namespace
}  // namespace saql
