#include "engine/aggregates.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

std::unique_ptr<Aggregator> Make(const std::string& name) {
  Result<std::unique_ptr<Aggregator>> r = MakeAggregator(name);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(AggregatesTest, Sum) {
  auto agg = Make("sum");
  agg->Add(Value(int64_t{10}));
  agg->Add(Value(int64_t{32}));
  Value v = agg->Finish();
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 42);
}

TEST(AggregatesTest, SumPromotesToFloatOnFloatInput) {
  auto agg = Make("sum");
  agg->Add(Value(1.5));
  agg->Add(Value(int64_t{2}));
  Value v = agg->Finish();
  EXPECT_TRUE(v.is_float());
  EXPECT_DOUBLE_EQ(v.AsFloat(), 3.5);
}

TEST(AggregatesTest, EmptySumIsZero) {
  EXPECT_EQ(Make("sum")->Finish().AsInt(), 0);
}

TEST(AggregatesTest, Avg) {
  auto agg = Make("avg");
  for (int i = 1; i <= 4; ++i) agg->Add(Value(static_cast<int64_t>(i)));
  EXPECT_DOUBLE_EQ(agg->Finish().AsFloat(), 2.5);
}

TEST(AggregatesTest, EmptyAvgIsNull) {
  EXPECT_TRUE(Make("avg")->Finish().is_null());
}

TEST(AggregatesTest, CountCountsNonNull) {
  auto agg = Make("count");
  agg->Add(Value(int64_t{1}));
  agg->Add(Value("x"));
  agg->Add(Value::Null());
  EXPECT_EQ(agg->Finish().AsInt(), 2);
}

TEST(AggregatesTest, MinMax) {
  auto min = Make("min");
  auto max = Make("max");
  for (int64_t v : {5, 2, 9, 3}) {
    min->Add(Value(v));
    max->Add(Value(v));
  }
  EXPECT_EQ(min->Finish().AsInt(), 2);
  EXPECT_EQ(max->Finish().AsInt(), 9);
}

TEST(AggregatesTest, MinMaxOnStrings) {
  auto min = Make("min");
  min->Add(Value("banana"));
  min->Add(Value("apple"));
  EXPECT_EQ(min->Finish().AsString(), "apple");
}

TEST(AggregatesTest, EmptyMinIsNull) {
  EXPECT_TRUE(Make("min")->Finish().is_null());
}

TEST(AggregatesTest, StdDev) {
  auto agg = Make("stddev");
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    agg->Add(Value(v));
  }
  EXPECT_DOUBLE_EQ(agg->Finish().AsFloat(), 2.0);
}

TEST(AggregatesTest, StdDevOfSingleSampleIsZero) {
  auto agg = Make("stddev");
  agg->Add(Value(7.0));
  EXPECT_DOUBLE_EQ(agg->Finish().AsFloat(), 0.0);
}

TEST(AggregatesTest, SetCollectsDistinct) {
  auto agg = Make("set");
  agg->Add(Value("php.exe"));
  agg->Add(Value("logger.exe"));
  agg->Add(Value("php.exe"));
  EXPECT_EQ(agg->Finish().AsSet(), (StringSet{"php.exe", "logger.exe"}));
}

TEST(AggregatesTest, EmptySetIsEmpty) {
  EXPECT_TRUE(Make("set")->Finish().AsSet().empty());
}

TEST(AggregatesTest, CountDistinct) {
  auto agg = Make("count_distinct");
  agg->Add(Value("a"));
  agg->Add(Value("b"));
  agg->Add(Value("a"));
  EXPECT_EQ(agg->Finish().AsInt(), 2);
}

TEST(AggregatesTest, NullInputsIgnored) {
  auto agg = Make("avg");
  agg->Add(Value::Null());
  agg->Add(Value(int64_t{10}));
  EXPECT_DOUBLE_EQ(agg->Finish().AsFloat(), 10.0);
}

TEST(AggregatesTest, NonNumericInputsIgnoredByNumericAggs) {
  auto agg = Make("sum");
  agg->Add(Value("not a number"));
  agg->Add(Value(int64_t{5}));
  EXPECT_EQ(agg->Finish().AsInt(), 5);
}

TEST(AggregatesTest, Median) {
  auto agg = Make("median");
  for (int64_t v : {9, 1, 5}) agg->Add(Value(v));
  EXPECT_DOUBLE_EQ(agg->Finish().AsFloat(), 5.0);
  agg->Add(Value(int64_t{7}));  // even count -> mean of middle two
  EXPECT_DOUBLE_EQ(agg->Finish().AsFloat(), 6.0);
}

TEST(AggregatesTest, EmptyMedianIsNull) {
  EXPECT_TRUE(Make("median")->Finish().is_null());
}

TEST(AggregatesTest, TopPicksMostFrequent) {
  auto agg = Make("top");
  for (const char* v : {"a", "b", "b", "c", "b", "a"}) agg->Add(Value(v));
  EXPECT_EQ(agg->Finish().AsString(), "b");
}

TEST(AggregatesTest, TopTieBreaksToSmallest) {
  auto agg = Make("top");
  for (const char* v : {"b", "a"}) agg->Add(Value(v));
  EXPECT_EQ(agg->Finish().AsString(), "a");
}

TEST(AggregatesTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeAggregator("harmonic_mean").ok());
}

}  // namespace
}  // namespace saql
