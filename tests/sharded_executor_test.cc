// Sharded execution: the N-lane hash-partitioned executor must be
// observationally equivalent to the single-threaded executor — same alert
// multiset on the same corpus for every query in queries/ — with
// deterministic output ordering, cross-shard window merging for stateful
// queries, and lane-by-lane routed-skip stats parity.

#include "stream/sharded_executor.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collect/enterprise_sim.h"
#include "engine/engine.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

// ---------------------------------------------------------------------------
// ShardedStreamExecutor unit level.
// ---------------------------------------------------------------------------

class RecordingProcessor : public EventProcessor {
 public:
  void OnEvent(const Event& event) override { events.push_back(event); }
  void OnWatermark(Timestamp ts) override { watermarks.push_back(ts); }
  void OnFinish() override { finished = true; }

  EventBatch events;
  std::vector<Timestamp> watermarks;
  bool finished = false;
};

EventBatch MixedHostStream(size_t n) {
  EventBatch events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    events.push_back(EventBuilder()
                         .Id(i + 1)
                         .At(static_cast<Timestamp>(i + 1) * kSecond)
                         .OnHost("host-" + std::to_string(i % 5))
                         .Subject("app.exe", 100 + static_cast<int64_t>(i % 7))
                         .Op(EventOp::kWrite)
                         .FileObject("/data/f" + std::to_string(i % 3))
                         .Build());
  }
  return events;
}

TEST(ShardedExecutorTest, EveryEventReachesExactlyOneShard) {
  const size_t kShards = 4;
  ShardedStreamExecutor::Options opts;
  opts.num_shards = kShards;
  ShardedStreamExecutor sharded(opts);
  std::vector<RecordingProcessor> procs(kShards);
  for (size_t s = 0; s < kShards; ++s) sharded.SubscribeShard(s, &procs[s]);

  VectorEventSource source(MixedHostStream(500));
  sharded.Run(&source, /*batch_size=*/64);

  size_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_TRUE(procs[s].finished);
    total += procs[s].events.size();
    // Per-lane order is the input (timestamp) order.
    for (size_t i = 1; i < procs[s].events.size(); ++i) {
      EXPECT_LE(procs[s].events[i - 1].ts, procs[s].events[i].ts);
    }
    // Every event on this shard is one the partitioner assigns here.
    for (const Event& e : procs[s].events) {
      EXPECT_EQ(ShardedStreamExecutor::SubjectKeyShard(e, kShards), s);
    }
  }
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(sharded.splitter_stats().input_events, 500u);
  EXPECT_GT(sharded.num_shards(), 1u);
}

TEST(ShardedExecutorTest, SameSubjectKeyAlwaysSameShard) {
  Event a = EventBuilder().OnHost("h1").Subject("x.exe", 42).Build();
  Event b = EventBuilder()
                .OnHost("h1")
                .Subject("other.exe", 42)  // exe differs; (host, pid) equal
                .Op(EventOp::kConnect)
                .NetObject("1.2.3.4")
                .Build();
  for (size_t n : {2u, 3u, 4u, 8u}) {
    EXPECT_EQ(ShardedStreamExecutor::SubjectKeyShard(a, n),
              ShardedStreamExecutor::SubjectKeyShard(b, n));
  }
  Event c = EventBuilder().OnHost("h2").Subject("x.exe", 42).Build();
  bool differs_somewhere = false;
  for (size_t n : {2u, 3u, 4u, 8u, 16u, 32u}) {
    if (ShardedStreamExecutor::SubjectKeyShard(a, n) !=
        ShardedStreamExecutor::SubjectKeyShard(c, n)) {
      differs_somewhere = true;
    }
  }
  EXPECT_TRUE(differs_somewhere);  // hosts actually spread
}

TEST(ShardedExecutorTest, GlobalLaneSeesFullOrderedStream) {
  ShardedStreamExecutor::Options opts;
  opts.num_shards = 3;
  ShardedStreamExecutor sharded(opts);
  std::vector<RecordingProcessor> procs(3);
  for (size_t s = 0; s < 3; ++s) sharded.SubscribeShard(s, &procs[s]);
  RecordingProcessor global;
  sharded.SubscribeGlobal(&global);

  EventBatch stream = MixedHostStream(300);
  VectorEventSource source(stream);
  sharded.Run(&source, 32);

  ASSERT_TRUE(sharded.has_global_lane());
  ASSERT_EQ(global.events.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(global.events[i].id, stream[i].id);
  }
  EXPECT_TRUE(global.finished);
  // Watermarks are monotone per lane.
  for (size_t i = 1; i < global.watermarks.size(); ++i) {
    EXPECT_LT(global.watermarks[i - 1], global.watermarks[i]);
  }
}

TEST(ShardedExecutorTest, MergedStatsKeepRoutedSkipParity) {
  // Two subscribers per shard with disjoint interests: parity
  // (deliveries + routed_skips == subscribers * lane events) must hold
  // lane by lane and therefore for the merged sum.
  class FileOnly final : public RecordingProcessor {
   public:
    RoutingInterest Interest() const override {
      RoutingInterest r;
      r.Add(EntityType::kFile, OpBit(EventOp::kWrite));
      return r;
    }
  };
  class NetOnly final : public RecordingProcessor {
   public:
    RoutingInterest Interest() const override {
      RoutingInterest r;
      r.Add(EntityType::kNetwork, OpBit(EventOp::kConnect));
      return r;
    }
  };

  const size_t kShards = 2;
  ShardedStreamExecutor::Options opts;
  opts.num_shards = kShards;
  ShardedStreamExecutor sharded(opts);
  std::vector<FileOnly> file_procs(kShards);
  std::vector<NetOnly> net_procs(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    sharded.SubscribeShard(s, &file_procs[s]);
    sharded.SubscribeShard(s, &net_procs[s]);
  }
  VectorEventSource source(MixedHostStream(400));  // all file writes
  sharded.Run(&source, 128);

  ExecutorStats merged = sharded.merged_stats();
  EXPECT_EQ(merged.events, 400u);
  EXPECT_EQ(merged.deliveries + merged.routed_skips, 2 * 400u);
  size_t file_seen = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const ExecutorStats& lane = sharded.shard_stats(s);
    EXPECT_EQ(lane.deliveries + lane.routed_skips, 2 * lane.events);
    file_seen += file_procs[s].events.size();
    EXPECT_TRUE(net_procs[s].events.empty());
  }
  EXPECT_EQ(file_seen, 400u);
}

// ---------------------------------------------------------------------------
// Engine-level shard equivalence on the paper corpus.
// ---------------------------------------------------------------------------

/// Every checked-in query: the paper's Queries 1–4 plus the APT demo set
/// (multi-event rules exercise the global lane; a6/a7/a8 and queries 2–4
/// exercise the cross-shard window merge, incl. set-invariant and DBSCAN
/// cluster stages).
const char* const kCorpusQueries[][2] = {
    {"q1-exfiltration", "query1_rule.saql"},
    {"q2-timeseries", "query2_timeseries.saql"},
    {"q3-invariant", "query3_invariant.saql"},
    {"q4-outlier", "query4_outlier.saql"},
    {"r1-initial-compromise", "apt/r1_initial_compromise.saql"},
    {"r2-malware-infection", "apt/r2_malware_infection.saql"},
    {"r3-privilege-escalation", "apt/r3_privilege_escalation.saql"},
    {"r4-penetration", "apt/r4_penetration.saql"},
    {"a6-invariant-excel", "apt/a6_invariant_excel.saql"},
    {"a7-timeseries-network", "apt/a7_timeseries_network.saql"},
    {"a8-outlier-dbscan", "apt/a8_outlier_dbscan.saql"},
};

struct CorpusRun {
  std::vector<std::string> alerts;  ///< rendered, in emission order
  uint64_t events = 0;
  std::map<std::string, CompiledQuery::QueryStats> stats;
  std::string errors;
};

CorpusRun RunCorpus(size_t num_shards, bool force_sharded = false) {
  EnterpriseSimulator::Options sopts;
  sopts.num_workstations = 2;
  sopts.duration = 20 * kMinute;
  sopts.events_per_host_per_second = 8;
  sopts.attack_offset = 8 * kMinute;
  sopts.include_attack = true;
  sopts.seed = 20200227;
  EnterpriseSimulator sim(sopts);
  auto source = sim.MakeSource();

  SaqlEngine::Options eopts;
  eopts.num_shards = num_shards;
  eopts.force_sharded_executor = force_sharded;
  SaqlEngine engine(eopts);
  for (const auto& [name, file] : kCorpusQueries) {
    Status st = engine.AddQuery(testing::ReadQueryFile(file), name);
    EXPECT_TRUE(st.ok()) << name << ": " << st;
  }
  Status st = engine.Run(source.get());
  EXPECT_TRUE(st.ok()) << st;

  CorpusRun run;
  for (const Alert& a : engine.alerts()) run.alerts.push_back(a.ToString());
  run.events = engine.executor_stats().events;
  for (const auto& [name, qs] : engine.query_stats()) run.stats[name] = qs;
  run.errors = engine.errors().ToString();
  return run;
}

std::vector<std::string> AsMultiset(std::vector<std::string> alerts) {
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

class ShardEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    baseline_ = new CorpusRun(RunCorpus(/*num_shards=*/1));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    baseline_ = nullptr;
  }
  static CorpusRun* baseline_;
};

CorpusRun* ShardEquivalenceTest::baseline_ = nullptr;

TEST_F(ShardEquivalenceTest, BaselineDetectsSomething) {
  EXPECT_FALSE(baseline_->alerts.empty());
  EXPECT_EQ(baseline_->errors, "(no errors)") << baseline_->errors;
}

TEST_F(ShardEquivalenceTest, OneShardShardedEqualsSingleThreaded) {
  // The full sharded pipeline — splitter, lane thread, partial-window
  // export, merge stage, ordered sink — collapsed to one shard must
  // reproduce the single-threaded executor exactly.
  CorpusRun run = RunCorpus(1, /*force_sharded=*/true);
  EXPECT_EQ(AsMultiset(run.alerts), AsMultiset(baseline_->alerts));
  EXPECT_EQ(run.errors, "(no errors)") << run.errors;
}

TEST_F(ShardEquivalenceTest, ZeroShardsForcedShardedClampsToOneLane) {
  // num_shards=0 with the forced pipeline must clamp to one lane (engine
  // and executor agree on the clamp) instead of wiring zero replicas
  // against a one-lane executor.
  CorpusRun run = RunCorpus(0, /*force_sharded=*/true);
  EXPECT_EQ(AsMultiset(run.alerts), AsMultiset(baseline_->alerts));
}

TEST_F(ShardEquivalenceTest, TwoShardsSameAlertMultiset) {
  CorpusRun run = RunCorpus(2);
  EXPECT_EQ(AsMultiset(run.alerts), AsMultiset(baseline_->alerts));
  EXPECT_EQ(run.errors, "(no errors)") << run.errors;
}

TEST_F(ShardEquivalenceTest, ThreeShardsSameAlertMultiset) {
  CorpusRun run = RunCorpus(3);
  EXPECT_EQ(AsMultiset(run.alerts), AsMultiset(baseline_->alerts));
}

TEST_F(ShardEquivalenceTest, FourShardsSameAlertMultiset) {
  CorpusRun run = RunCorpus(4);
  EXPECT_EQ(AsMultiset(run.alerts), AsMultiset(baseline_->alerts));
  EXPECT_EQ(run.errors, "(no errors)") << run.errors;
}

TEST_F(ShardEquivalenceTest, ShardedRunIsDeterministic) {
  // Same shard count twice: identical alert *sequence*, not just multiset
  // (the ordered sink sorts by time/query/group/values).
  CorpusRun first = RunCorpus(3);
  CorpusRun second = RunCorpus(3);
  EXPECT_EQ(first.alerts, second.alerts);
}

TEST_F(ShardEquivalenceTest, PerQueryAlertCountsMatchBaseline) {
  CorpusRun run = RunCorpus(4);
  for (const auto& [name, file] : kCorpusQueries) {
    (void)file;
    ASSERT_TRUE(run.stats.count(name)) << name;
    ASSERT_TRUE(baseline_->stats.count(name)) << name;
    EXPECT_EQ(run.stats[name].alerts, baseline_->stats[name].alerts)
        << name;
  }
}

TEST_F(ShardEquivalenceTest, ShardStatsAccountAllEvents) {
  CorpusRun run = RunCorpus(2);
  // Shard lanes together see each input event exactly once; the global
  // lane (hosting the multi-event rule queries) sees each once more.
  EXPECT_EQ(run.events, 2 * baseline_->events);
}

}  // namespace
}  // namespace saql
