#include <gtest/gtest.h>

#include "stream/event_source.h"
#include "stream/reorder_buffer.h"
#include "stream/stream_executor.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

EventBatch MakeOrderedEvents(int n, Timestamp start = 0,
                             Duration gap = kSecond) {
  EventBatch out;
  for (int i = 0; i < n; ++i) {
    out.push_back(EventBuilder()
                      .Id(static_cast<uint64_t>(i + 1))
                      .At(start + i * gap)
                      .OnHost("h1")
                      .Subject("p.exe")
                      .FileObject("/tmp/f")
                      .Build());
  }
  return out;
}

TEST(VectorEventSourceTest, DeliversAllInBatches) {
  VectorEventSource src(MakeOrderedEvents(10));
  EventBatch batch;
  size_t total = 0;
  while (src.NextBatch(3, &batch)) {
    EXPECT_LE(batch.size(), 3u);
    total += batch.size();
  }
  EXPECT_EQ(total, 10u);
}

TEST(VectorEventSourceTest, ResetRewinds) {
  VectorEventSource src(MakeOrderedEvents(5));
  EventBatch batch;
  while (src.NextBatch(10, &batch)) {
  }
  src.Reset();
  ASSERT_TRUE(src.NextBatch(10, &batch));
  EXPECT_EQ(batch.size(), 5u);
}

TEST(CallbackEventSourceTest, StopsWhenGeneratorEnds) {
  int remaining = 7;
  CallbackEventSource src([&](Event* e) {
    if (remaining == 0) return false;
    e->ts = 7 - remaining;
    --remaining;
    return true;
  });
  EventBatch batch;
  size_t total = 0;
  while (src.NextBatch(4, &batch)) total += batch.size();
  EXPECT_EQ(total, 7u);
}

TEST(MergingEventSourceTest, MergesByTimestamp) {
  std::vector<std::unique_ptr<EventSource>> inputs;
  inputs.push_back(std::make_unique<VectorEventSource>(
      MakeOrderedEvents(5, 0, 2 * kSecond)));  // ts 0,2,4,6,8
  inputs.push_back(std::make_unique<VectorEventSource>(
      MakeOrderedEvents(5, kSecond, 2 * kSecond)));  // ts 1,3,5,7,9
  MergingEventSource merged(std::move(inputs));
  EventBatch batch;
  EventBatch all;
  while (merged.NextBatch(3, &batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(all.size(), 10u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].ts, all[i].ts);
  }
}

/// Wraps a source and records the largest `max_events` the consumer asked
/// it for — pins the merge fan-in against over-pulling its inputs.
class BudgetRecordingSource : public EventSource {
 public:
  explicit BudgetRecordingSource(EventBatch events)
      : inner_(std::move(events)) {}

  EventBlock* NextBlock(size_t max_events) override {
    max_requested = std::max(max_requested, max_events);
    return inner_.NextBlock(max_events);
  }

  size_t max_requested = 0;

 private:
  VectorEventSource inner_;
};

// Regression: MergingEventSource used to refill its inner cursors with a
// hardcoded 4096-event pull regardless of the caller's budget — fatal for
// paced or windowed inner sources behind the merge. Inner pulls must not
// exceed the consumer's max_events.
TEST(MergingEventSourceTest, RespectsCallerBatchBudget) {
  std::vector<std::unique_ptr<EventSource>> inputs;
  auto a = std::make_unique<BudgetRecordingSource>(
      MakeOrderedEvents(200, 0, 2 * kSecond));
  auto b = std::make_unique<BudgetRecordingSource>(
      MakeOrderedEvents(200, kSecond, 2 * kSecond));
  BudgetRecordingSource* ra = a.get();
  BudgetRecordingSource* rb = b.get();
  inputs.push_back(std::move(a));
  inputs.push_back(std::move(b));
  MergingEventSource merged(std::move(inputs));
  EventBatch batch, all;
  while (merged.NextBatch(10, &batch)) {
    EXPECT_LE(batch.size(), 10u);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(all.size(), 400u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].ts, all[i].ts);
  }
  EXPECT_LE(ra->max_requested, 10u);
  EXPECT_LE(rb->max_requested, 10u);
  EXPECT_GT(ra->max_requested, 0u);
}

TEST(MergingEventSourceTest, HandlesEmptyInputs) {
  std::vector<std::unique_ptr<EventSource>> inputs;
  inputs.push_back(std::make_unique<VectorEventSource>(EventBatch{}));
  inputs.push_back(
      std::make_unique<VectorEventSource>(MakeOrderedEvents(3)));
  MergingEventSource merged(std::move(inputs));
  EventBatch batch;
  size_t total = 0;
  while (merged.NextBatch(10, &batch)) total += batch.size();
  EXPECT_EQ(total, 3u);
}

class RecordingProcessor : public EventProcessor {
 public:
  void OnEvent(const Event& event) override { events.push_back(event); }
  void OnWatermark(Timestamp ts) override { watermarks.push_back(ts); }
  void OnFinish() override { finished = true; }

  EventBatch events;
  std::vector<Timestamp> watermarks;
  bool finished = false;
};

TEST(StreamExecutorTest, DeliversToAllSubscribers) {
  VectorEventSource src(MakeOrderedEvents(10));
  RecordingProcessor a, b;
  StreamExecutor exec;
  exec.Subscribe(&a);
  exec.Subscribe(&b);
  exec.Run(&src, 4);
  EXPECT_EQ(a.events.size(), 10u);
  EXPECT_EQ(b.events.size(), 10u);
  EXPECT_TRUE(a.finished);
  EXPECT_TRUE(b.finished);
  EXPECT_EQ(exec.stats().events, 10u);
  EXPECT_EQ(exec.stats().deliveries, 20u);  // 2 subscribers x 10 events
}

TEST(StreamExecutorTest, WatermarksAdvanceWithBatches) {
  VectorEventSource src(MakeOrderedEvents(10));
  RecordingProcessor p;
  StreamExecutor exec;
  exec.Subscribe(&p);
  exec.Run(&src, 5);
  ASSERT_EQ(p.watermarks.size(), 2u);  // one per batch
  EXPECT_EQ(p.watermarks[0], 4 * kSecond);
  EXPECT_EQ(p.watermarks[1], 9 * kSecond);
}

TEST(StreamExecutorTest, EmptySourceStillFinishes) {
  VectorEventSource src(EventBatch{});
  RecordingProcessor p;
  StreamExecutor exec;
  exec.Subscribe(&p);
  exec.Run(&src);
  EXPECT_TRUE(p.finished);
  EXPECT_TRUE(p.events.empty());
  EXPECT_TRUE(p.watermarks.empty());
}

TEST(ReorderBufferTest, OrdersDisorderedStream) {
  ReorderBuffer buf(5 * kSecond);
  EventBatch out;
  // Arrivals: 10, 8, 12, 9, 20 (all within a 5s horizon of the max).
  for (Timestamp ts : {10, 8, 12, 9, 20}) {
    buf.Push(EventBuilder().At(ts * kSecond).Subject("p").Build(), &out);
  }
  buf.Flush(&out);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].ts, out[i].ts);
  }
  EXPECT_EQ(buf.late_count(), 0u);
}

TEST(ReorderBufferTest, ReleasesOnceHorizonPasses) {
  ReorderBuffer buf(2 * kSecond);
  EventBatch out;
  buf.Push(EventBuilder().At(1 * kSecond).Subject("p").Build(), &out);
  EXPECT_TRUE(out.empty());  // still within horizon
  buf.Push(EventBuilder().At(10 * kSecond).Subject("p").Build(), &out);
  // 1s event is now older than 10s - 2s -> released.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ts, 1 * kSecond);
  EXPECT_EQ(buf.buffered(), 1u);
}

TEST(ReorderBufferTest, CountsLateEvents) {
  ReorderBuffer buf(kSecond);
  EventBatch out;
  buf.Push(EventBuilder().At(100 * kSecond).Subject("p").Build(), &out);
  buf.Push(EventBuilder().At(1 * kSecond).Subject("p").Build(), &out);
  EXPECT_EQ(buf.late_count(), 1u);
  // The late event was emitted immediately.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().ts, 1 * kSecond);
}

TEST(ReorderBufferTest, FlushEmitsEverything) {
  ReorderBuffer buf(100 * kSecond);
  EventBatch out;
  for (Timestamp ts : {5, 3, 4}) {
    buf.Push(EventBuilder().At(ts * kSecond).Subject("p").Build(), &out);
  }
  EXPECT_TRUE(out.empty());
  buf.Flush(&out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(buf.buffered(), 0u);
}

}  // namespace
}  // namespace saql
