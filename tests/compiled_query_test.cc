#include "engine/compiled_query.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

/// Direct harness around CompiledQuery (no engine/executor): precise
/// control over event and watermark ordering.
class QueryHarness {
 public:
  explicit QueryHarness(const std::string& text) {
    Result<AnalyzedQueryPtr> aq = CompileSaql(text);
    EXPECT_TRUE(aq.ok()) << aq.status();
    Result<std::unique_ptr<CompiledQuery>> q =
        CompiledQuery::Create(aq.value(), "q");
    EXPECT_TRUE(q.ok()) << q.status();
    query_ = std::move(q).value();
    query_->SetErrorReporter(&errors_);
    query_->SetAlertSink([this](const Alert& a) { alerts_.push_back(a); });
  }

  CompiledQuery* operator->() { return query_.get(); }
  const std::vector<Alert>& alerts() const { return alerts_; }
  const ErrorReporter& errors() const { return errors_; }

 private:
  std::unique_ptr<CompiledQuery> query_;
  std::vector<Alert> alerts_;
  ErrorReporter errors_;
};

Event NetWrite(const std::string& exe, int64_t amount, Timestamp ts) {
  return EventBuilder()
      .At(ts)
      .OnHost("h1")
      .Subject(exe, 100)
      .Op(EventOp::kWrite)
      .NetObject("1.2.3.4")
      .Amount(amount)
      .Build();
}

TEST(CompiledQueryTest, WindowNotClosedBeforeWatermark) {
  QueryHarness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { c := count() } group by p "
      "alert ss.c > 0 return p, ss.c");
  h->OnEvent(NetWrite("a.exe", 10, kSecond));
  h->OnWatermark(30 * kSecond);  // window [0, 1min) still open
  EXPECT_TRUE(h.alerts().empty());
  h->OnWatermark(kMinute);  // now it closes
  ASSERT_EQ(h.alerts().size(), 1u);
  EXPECT_EQ(h.alerts()[0].values[1].second.AsInt(), 1);
}

TEST(CompiledQueryTest, FinishFlushesOpenWindows) {
  QueryHarness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { c := count() } group by p "
      "alert ss.c > 0 return p, ss.c");
  h->OnEvent(NetWrite("a.exe", 10, kSecond));
  h->OnFinish();
  EXPECT_EQ(h.alerts().size(), 1u);
}

TEST(CompiledQueryTest, WindowsCloseInTimeOrder) {
  QueryHarness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 0 return p, ss.amt");
  h->OnEvent(NetWrite("a.exe", 1, 10 * kSecond));          // window 0
  h->OnEvent(NetWrite("a.exe", 2, 70 * kSecond));          // window 1
  h->OnEvent(NetWrite("a.exe", 4, 130 * kSecond));         // window 2
  h->OnFinish();
  ASSERT_EQ(h.alerts().size(), 3u);
  EXPECT_EQ(h.alerts()[0].values[1].second.AsInt(), 1);
  EXPECT_EQ(h.alerts()[1].values[1].second.AsInt(), 2);
  EXPECT_EQ(h.alerts()[2].values[1].second.AsInt(), 4);
  EXPECT_LT(h.alerts()[0].ts, h.alerts()[1].ts);
}

TEST(CompiledQueryTest, HoppingWindowCountsEventTwice) {
  QueryHarness h(
      "proc p write ip i as e #time(1 min, 30 s) "
      "state ss { c := count() } group by p "
      "alert ss.c > 0 return p, ss.c");
  // ts=45s is in windows [0,60) and [30,90).
  h->OnEvent(NetWrite("a.exe", 10, 45 * kSecond));
  h->OnFinish();
  ASSERT_EQ(h.alerts().size(), 2u);
  EXPECT_EQ(h.alerts()[0].values[1].second.AsInt(), 1);
  EXPECT_EQ(h.alerts()[1].values[1].second.AsInt(), 1);
}

TEST(CompiledQueryTest, MultipleGroupKeys) {
  QueryHarness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by p, i.dstip "
      "alert ss.amt > 0 return p, i.dstip, ss.amt");
  Event a = NetWrite("a.exe", 5, kSecond);
  Event b = NetWrite("a.exe", 7, 2 * kSecond);
  b.obj_net.dst_ip = "9.9.9.9";
  h->OnEvent(a);
  h->OnEvent(b);
  h->OnFinish();
  ASSERT_EQ(h.alerts().size(), 2u);
  // Group rendering joins the key values.
  EXPECT_NE(h.alerts()[0].group.find("a.exe"), std::string::npos);
}

TEST(CompiledQueryTest, GroupByEventField) {
  QueryHarness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by e.agentid "
      "alert ss.amt > 0 return e.agentid, ss.amt");
  Event a = NetWrite("x.exe", 5, kSecond);
  Event b = NetWrite("x.exe", 7, 2 * kSecond);
  b.agent_id = "h2";
  h->OnEvent(a);
  h->OnEvent(b);
  h->OnFinish();
  ASSERT_EQ(h.alerts().size(), 2u);
  EXPECT_EQ(h.alerts()[0].values[0].second.AsString(), "h1");
  EXPECT_EQ(h.alerts()[1].values[0].second.AsString(), "h2");
}

TEST(CompiledQueryTest, StatefulQueryWithoutAlertReportsEveryGroup) {
  QueryHarness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by p "
      "return p, ss.amt");
  h->OnEvent(NetWrite("a.exe", 5, kSecond));
  h->OnEvent(NetWrite("b.exe", 7, 2 * kSecond));
  h->OnFinish();
  EXPECT_EQ(h.alerts().size(), 2u);  // continuous reporting mode
}

TEST(CompiledQueryTest, RuntimeErrorReportedNotFatal) {
  // sqrt of a negative number fails at alert time; the error lands in the
  // reporter and the stream continues.
  QueryHarness h(
      "proc p write ip i as e "
      "alert sqrt(0 - e.amount) > 0 return p");
  h->OnEvent(NetWrite("a.exe", 100, kSecond));
  h->OnEvent(NetWrite("a.exe", 100, 2 * kSecond));
  h->OnFinish();
  EXPECT_TRUE(h.alerts().empty());
  EXPECT_EQ(h.errors().total(), 2u);
  EXPECT_EQ(h->stats().eval_errors, 2u);
}

TEST(CompiledQueryTest, StatsCountStages) {
  QueryHarness h(
      "agentid = \"h1\" proc p[\"%a.exe\"] write ip i as e return p");
  h->OnEvent(NetWrite("a.exe", 1, kSecond));
  Event other_host = NetWrite("a.exe", 1, 2 * kSecond);
  other_host.agent_id = "h9";
  h->OnEvent(other_host);
  h->OnEvent(NetWrite("b.exe", 1, 3 * kSecond));
  h->OnFinish();
  EXPECT_EQ(h->stats().events_in, 3u);
  EXPECT_EQ(h->stats().events_past_global, 2u);
  EXPECT_EQ(h->stats().matches, 1u);
  EXPECT_EQ(h->stats().alerts, 1u);
}

TEST(CompiledQueryTest, InvariantGroupsTrainIndependently) {
  QueryHarness h(
      "proc p start proc c as e #time(10 s) "
      "state ss { s := set(c.exe_name) } group by p "
      "invariant[1][offline] { a := empty_set a = a union ss.s } "
      "alert |ss.s diff a| > 0 return p, ss.s");
  auto spawn = [](const std::string& parent, const std::string& child,
                  Timestamp ts) {
    return EventBuilder()
        .At(ts)
        .OnHost("h1")
        .Subject(parent, 10)
        .Op(EventOp::kStart)
        .ProcObject(child, 20)
        .Build();
  };
  // apache trains on window 0, violates in window 1.
  h->OnEvent(spawn("apache.exe", "php.exe", kSecond));
  // nginx first appears in window 1 -> its window 1 is TRAINING, so its
  // new child must not alert even though apache's window 1 does.
  h->OnEvent(spawn("apache.exe", "evil.exe", 11 * kSecond));
  h->OnEvent(spawn("nginx.exe", "worker.exe", 12 * kSecond));
  h->OnFinish();
  ASSERT_EQ(h.alerts().size(), 1u);
  EXPECT_EQ(h.alerts()[0].group, "apache.exe");
}

TEST(CompiledQueryTest, StructuralMatchIgnoresConstraints) {
  QueryHarness h("proc p[\"%a.exe\"] write ip i as e return p");
  Event wrong_name = NetWrite("zzz.exe", 1, kSecond);
  EXPECT_TRUE(h->StructuralMatchAny(wrong_name));  // shape matches
  Event wrong_shape = EventBuilder()
                          .At(1)
                          .Subject("a.exe")
                          .Op(EventOp::kRead)
                          .FileObject("/x")
                          .Build();
  EXPECT_FALSE(h->StructuralMatchAny(wrong_shape));
}

TEST(CompiledQueryTest, LateEventIntoClosedWindowIsDropped) {
  QueryHarness h(
      "proc p write ip i as e #time(1 min) "
      "state ss { c := count() } group by p "
      "alert ss.c > 0 return p, ss.c");
  h->OnEvent(NetWrite("a.exe", 1, kSecond));
  h->OnWatermark(2 * kMinute);  // closes window [0, 1min)
  ASSERT_EQ(h.alerts().size(), 1u);
  // A straggler for the closed window opens a NEW bucket keyed by the same
  // window; it flushes at finish (count=1) rather than corrupting history.
  h->OnEvent(NetWrite("a.exe", 1, 30 * kSecond));
  h->OnFinish();
  EXPECT_EQ(h.alerts().size(), 2u);
}

TEST(CompiledQueryTest, CreateRejectsNull) {
  Result<std::unique_ptr<CompiledQuery>> q =
      CompiledQuery::Create(nullptr, "q");
  EXPECT_FALSE(q.ok());
}

}  // namespace
}  // namespace saql
