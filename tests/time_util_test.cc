#include "core/time_util.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

TEST(TimeUnitTest, ParsesAllUnits) {
  EXPECT_EQ(ParseTimeUnit("ns").value(), kNanosecond);
  EXPECT_EQ(ParseTimeUnit("us").value(), kMicrosecond);
  EXPECT_EQ(ParseTimeUnit("ms").value(), kMillisecond);
  EXPECT_EQ(ParseTimeUnit("s").value(), kSecond);
  EXPECT_EQ(ParseTimeUnit("sec").value(), kSecond);
  EXPECT_EQ(ParseTimeUnit("seconds").value(), kSecond);
  EXPECT_EQ(ParseTimeUnit("min").value(), kMinute);
  EXPECT_EQ(ParseTimeUnit("minutes").value(), kMinute);
  EXPECT_EQ(ParseTimeUnit("h").value(), kHour);
  EXPECT_EQ(ParseTimeUnit("day").value(), kDay);
}

TEST(TimeUnitTest, CaseInsensitive) {
  EXPECT_EQ(ParseTimeUnit("MIN").value(), kMinute);
  EXPECT_EQ(ParseTimeUnit("Sec").value(), kSecond);
}

TEST(TimeUnitTest, RejectsUnknownUnit) {
  EXPECT_FALSE(ParseTimeUnit("fortnight").ok());
}

TEST(DurationTest, ParsesNumberWithUnit) {
  EXPECT_EQ(ParseDuration("10 min").value(), 10 * kMinute);
  EXPECT_EQ(ParseDuration("30 s").value(), 30 * kSecond);
  EXPECT_EQ(ParseDuration("1.5 s").value(), kSecond + 500 * kMillisecond);
}

TEST(DurationTest, DefaultsToSeconds) {
  EXPECT_EQ(ParseDuration("5").value(), 5 * kSecond);
}

TEST(DurationTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDuration("lots").ok());
}

TEST(FormatDurationTest, PicksNaturalUnit) {
  EXPECT_EQ(FormatDuration(10 * kMinute), "10min");
  EXPECT_EQ(FormatDuration(2 * kHour), "2h");
  EXPECT_EQ(FormatDuration(30 * kSecond), "30s");
  EXPECT_EQ(FormatDuration(250 * kMillisecond), "250ms");
  EXPECT_EQ(FormatDuration(5 * kMicrosecond), "5us");
  EXPECT_EQ(FormatDuration(7), "7ns");
}

TEST(FormatTimestampTest, RendersUtc) {
  // 2020-02-27 00:00:00 UTC.
  Timestamp ts = 1582761600LL * kSecond;
  EXPECT_EQ(FormatTimestamp(ts), "2020-02-27 00:00:00.000");
  EXPECT_EQ(FormatTimestamp(ts + 123 * kMillisecond),
            "2020-02-27 00:00:00.123");
}

TEST(FormatTimestampTest, EpochIsZero) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00.000");
}

}  // namespace
}  // namespace saql
