// Global allocation counting for the allocation-free hot-path regression
// tests (see alloc_counter.h). Exactly one translation unit in the test
// binary may replace operator new/delete; every test that needs the count
// includes the header. Counting is relaxed-atomic so the replacement stays
// safe for the multi-threaded tests sharing this binary.
//
// Under AddressSanitizer the replacement is disabled: ASan interposes the
// allocator, and a malloc-backed ::operator new in the main binary
// mismatches deallocations of memory that shared libraries allocated
// through ASan's own operator new (alloc-dealloc-mismatch aborts). There
// HeapAllocs() stays 0 and the allocation-delta assertions hold vacuously;
// the plain (non-sanitizer) CI job is the one that enforces them.

#include "alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define SAQL_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SAQL_ASAN_ACTIVE 1
#endif
#endif

namespace {
std::atomic<std::size_t> g_heap_allocs{0};
}  // namespace

#ifndef SAQL_ASAN_ACTIVE

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // SAQL_ASAN_ACTIVE

namespace saql {
namespace testing {

std::size_t HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

}  // namespace testing
}  // namespace saql
