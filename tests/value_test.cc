#include "core/value.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.Truthy());
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, KindAccessors) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{7}).is_int());
  EXPECT_TRUE(Value(3.5).is_float());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(StringSet{"a"}).is_set());
  EXPECT_TRUE(Value(int64_t{7}).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("abc").is_numeric());
}

TEST(ValueTest, ToDoubleCoercions) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).ToDouble().value(), 4.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToDouble().value(), 2.5);
  EXPECT_DOUBLE_EQ(Value(true).ToDouble().value(), 1.0);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value(StringSet{}).ToDouble().ok());
}

TEST(ValueTest, Truthiness) {
  EXPECT_TRUE(Value(int64_t{1}).Truthy());
  EXPECT_FALSE(Value(int64_t{0}).Truthy());
  EXPECT_TRUE(Value(0.5).Truthy());
  EXPECT_FALSE(Value(0.0).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value(StringSet{"a"}).Truthy());
  EXPECT_FALSE(Value(StringSet{}).Truthy());
}

TEST(ValueTest, NumericEqualityAcrossKinds) {
  EXPECT_TRUE(Value(int64_t{1}).Equals(Value(1.0)));
  EXPECT_FALSE(Value(int64_t{1}).Equals(Value(1.5)));
  EXPECT_FALSE(Value(int64_t{1}).Equals(Value("1")));
}

TEST(ValueTest, SetEquality) {
  EXPECT_TRUE(Value(StringSet{"a", "b"}).Equals(Value(StringSet{"b", "a"})));
  EXPECT_FALSE(Value(StringSet{"a"}).Equals(Value(StringSet{"b"})));
}

TEST(ValueTest, CompareNumbers) {
  EXPECT_EQ(Value(int64_t{1}).Compare(Value(2.0)).value(), -1);
  EXPECT_EQ(Value(3.0).Compare(Value(int64_t{3})).value(), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(int64_t{4})).value(), 1);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(Value("a").Compare(Value("b")).value(), -1);
  EXPECT_EQ(Value("b").Compare(Value("b")).value(), 0);
}

TEST(ValueTest, CompareIncompatibleKindsFails) {
  EXPECT_FALSE(Value("a").Compare(Value(int64_t{1})).ok());
  EXPECT_FALSE(Value(StringSet{}).Compare(Value(StringSet{})).ok());
}

TEST(ValueArithmeticTest, IntAdd) {
  Value r = ValueAdd(Value(int64_t{2}), Value(int64_t{3})).value();
  EXPECT_TRUE(r.is_int());
  EXPECT_EQ(r.AsInt(), 5);
}

TEST(ValueArithmeticTest, MixedAddPromotesToFloat) {
  Value r = ValueAdd(Value(int64_t{2}), Value(0.5)).value();
  EXPECT_TRUE(r.is_float());
  EXPECT_DOUBLE_EQ(r.AsFloat(), 2.5);
}

TEST(ValueArithmeticTest, StringConcat) {
  Value r = ValueAdd(Value("ab"), Value("cd")).value();
  EXPECT_EQ(r.AsString(), "abcd");
}

TEST(ValueArithmeticTest, IntDivisionProducesFloat) {
  Value r = ValueDiv(Value(int64_t{7}), Value(int64_t{2})).value();
  EXPECT_TRUE(r.is_float());
  EXPECT_DOUBLE_EQ(r.AsFloat(), 3.5);
}

TEST(ValueArithmeticTest, DivisionByZeroFails) {
  EXPECT_FALSE(ValueDiv(Value(int64_t{1}), Value(int64_t{0})).ok());
  EXPECT_FALSE(ValueDiv(Value(1.0), Value(0.0)).ok());
}

TEST(ValueArithmeticTest, ModuloIntAndFloat) {
  EXPECT_EQ(ValueMod(Value(int64_t{7}), Value(int64_t{3})).value().AsInt(), 1);
  EXPECT_DOUBLE_EQ(
      ValueMod(Value(7.5), Value(int64_t{2})).value().AsFloat(), 1.5);
  EXPECT_FALSE(ValueMod(Value(int64_t{1}), Value(int64_t{0})).ok());
}

TEST(ValueArithmeticTest, NonNumericOperandError) {
  Result<Value> r = ValueMul(Value("a"), Value(int64_t{1}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
}

TEST(ValueSetOpsTest, Union) {
  Value r = ValueUnion(Value(StringSet{"a"}), Value(StringSet{"b"})).value();
  EXPECT_EQ(r.AsSet(), (StringSet{"a", "b"}));
}

TEST(ValueSetOpsTest, UnionWithNullActsAsEmptySet) {
  Value r = ValueUnion(Value::Null(), Value(StringSet{"x"})).value();
  EXPECT_EQ(r.AsSet(), (StringSet{"x"}));
}

TEST(ValueSetOpsTest, UnionWithStringActsAsSingleton) {
  Value r = ValueUnion(Value(StringSet{"a"}), Value("b")).value();
  EXPECT_EQ(r.AsSet(), (StringSet{"a", "b"}));
}

TEST(ValueSetOpsTest, Diff) {
  Value r = ValueDiff(Value(StringSet{"a", "b", "c"}),
                      Value(StringSet{"b"})).value();
  EXPECT_EQ(r.AsSet(), (StringSet{"a", "c"}));
}

TEST(ValueSetOpsTest, DiffEmptyResult) {
  Value r = ValueDiff(Value(StringSet{"a"}), Value(StringSet{"a"})).value();
  EXPECT_TRUE(r.AsSet().empty());
}

TEST(ValueSetOpsTest, Intersect) {
  Value r = ValueIntersect(Value(StringSet{"a", "b"}),
                           Value(StringSet{"b", "c"})).value();
  EXPECT_EQ(r.AsSet(), (StringSet{"b"}));
}

TEST(ValueSetOpsTest, InMembership) {
  EXPECT_TRUE(ValueIn(Value("a"), Value(StringSet{"a", "b"}))
                  .value().AsBool());
  EXPECT_FALSE(ValueIn(Value("z"), Value(StringSet{"a", "b"}))
                   .value().AsBool());
  EXPECT_FALSE(ValueIn(Value(int64_t{1}), Value(StringSet{"1"})).ok());
}

TEST(ValueSetOpsTest, SizeOfSetStringAndNumber) {
  EXPECT_EQ(ValueSize(Value(StringSet{"a", "b"})).value().AsInt(), 2);
  EXPECT_EQ(ValueSize(Value("abc")).value().AsInt(), 3);
  EXPECT_EQ(ValueSize(Value(int64_t{-5})).value().AsInt(), 5);
  EXPECT_DOUBLE_EQ(ValueSize(Value(-2.5)).value().AsFloat(), 2.5);
  EXPECT_EQ(ValueSize(Value::Null()).value().AsInt(), 0);
}

TEST(ValueTest, SetRendering) {
  EXPECT_EQ(Value(StringSet{"b", "a"}).ToString(), "{a, b}");
}

}  // namespace
}  // namespace saql
