#include <chrono>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "collect/enterprise_sim.h"
#include "storage/event_log.h"
#include "storage/file_backend.h"
#include "storage/replayer.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

EventBatch SampleEvents() {
  EventBatch out;
  out.push_back(EventBuilder()
                    .Id(1)
                    .At(10 * kSecond)
                    .OnHost("h1")
                    .Subject("cmd.exe", 42)
                    .Op(EventOp::kStart)
                    .ProcObject("osql.exe", 43)
                    .Build());
  out.push_back(EventBuilder()
                    .Id(2)
                    .At(20 * kSecond)
                    .OnHost("h2")
                    .Subject("sqlservr.exe", 50)
                    .Op(EventOp::kWrite)
                    .FileObject("C:\\MSSQL\\backup1.dmp")
                    .Amount(5000000)
                    .Build());
  out.push_back(EventBuilder()
                    .Id(3)
                    .At(30 * kSecond)
                    .OnHost("h1")
                    .Subject("sbblv.exe", 60)
                    .Op(EventOp::kWrite)
                    .NetObject("66.77.88.129", 443)
                    .Amount(123456)
                    .Build());
  return out;
}

TEST(EventLogTest, RoundTripPreservesAllFields) {
  std::string path = TempPath("roundtrip.saqllog");
  EventBatch original = SampleEvents();
  ASSERT_TRUE(WriteEventLog(path, original).ok());
  Result<EventBatch> loaded = ReadEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const Event& a = original[i];
    const Event& b = (*loaded)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.agent_id, b.agent_id);
    EXPECT_EQ(a.subject, b.subject);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.object_type, b.object_type);
    EXPECT_EQ(a.obj_proc, b.obj_proc);
    EXPECT_EQ(a.obj_file, b.obj_file);
    EXPECT_EQ(a.obj_net, b.obj_net);
    EXPECT_EQ(a.amount, b.amount);
    EXPECT_EQ(a.failed, b.failed);
  }
}

TEST(EventLogTest, EmptyLogReadsEmpty) {
  std::string path = TempPath("empty.saqllog");
  ASSERT_TRUE(WriteEventLog(path, {}).ok());
  Result<EventBatch> loaded = ReadEventLog(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(EventLogTest, MissingFileFails) {
  EXPECT_EQ(ReadEventLog("/nonexistent/nope.saqllog").status().code(),
            StatusCode::kIoError);
}

TEST(EventLogTest, RejectsNonLogFile) {
  std::string path = TempPath("not_a_log.txt");
  std::ofstream(path) << "hello world, definitely not a SAQL log";
  EXPECT_EQ(ReadEventLog(path).status().code(), StatusCode::kIoError);
}

TEST(EventLogTest, TruncatedTailIsCrashConsistent) {
  std::string path = TempPath("truncated.saqllog");
  ASSERT_TRUE(WriteEventLog(path, SampleEvents()).ok());
  // Chop off the last 5 bytes (mid-record).
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = static_cast<long>(in.tellg());
  in.close();
  std::ifstream src(path, std::ios::binary);
  std::string data(static_cast<size_t>(size - 5), '\0');
  src.read(data.data(), size - 5);
  src.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc) << data;

  Result<EventBatch> loaded = ReadEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);  // last record dropped, others intact
}

// The injected-fault twin of TruncatedTailIsCrashConsistent: a simulated
// power loss mid-append leaves a torn final record on disk (the
// backend's page-cache model keeps the unsynced prefix of the
// triggering write), and the reader drops exactly that record.
TEST(EventLogTest, InjectedCrashMidRecordIsCrashConsistent) {
  std::string path = TempPath("crash_midrec.saqllog");
  FaultInjectionFileBackend fs;
  // Header is 12 bytes; crash once the file holds the header, two full
  // records, and a few bytes of the third.
  EventBatch events = SampleEvents();
  uint64_t two_records;
  {
    EventLogWriter probe(TempPath("crash_probe.saqllog"), &fs);
    ASSERT_TRUE(probe.Append(events[0]).ok());
    ASSERT_TRUE(probe.Append(events[1]).ok());
    two_records = fs.bytes_appended();
  }
  fs.CrashAfterBytes("crash_midrec", two_records + 5);

  EventLogWriter w(path, &fs);
  ASSERT_TRUE(w.status().ok());
  EXPECT_TRUE(w.Append(events[0]).ok());
  EXPECT_TRUE(w.Append(events[1]).ok());
  EXPECT_FALSE(w.Append(events[2]).ok());  // the torn write
  EXPECT_TRUE(fs.crashed());
  w.Close();

  Result<EventBatch> loaded = ReadEventLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);  // torn record dropped, others intact
}

// Disk-full through the backend seam: the v1 writer reports the failure
// on the append that hit the wall and stays sticky.
TEST(EventLogTest, DiskFullSurfacesOnFailingAppend) {
  FaultInjectionFileBackend fs;
  fs.FailAppendsAfterBytes(1024);
  EventLogWriter w(TempPath("full.saqllog"), &fs);
  ASSERT_TRUE(w.status().ok());
  Status st;
  EventBatch events = SampleEvents();
  for (int i = 0; i < 100 && st.ok(); ++i) st = w.AppendBatch(events);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(w.Close().code(), StatusCode::kIoError);
}

TEST(EventLogTest, WriterCountsEvents) {
  std::string path = TempPath("count.saqllog");
  EventLogWriter w(path);
  ASSERT_TRUE(w.status().ok());
  ASSERT_TRUE(w.AppendBatch(SampleEvents()).ok());
  EXPECT_EQ(w.events_written(), 3u);
  EXPECT_TRUE(w.Close().ok());
}

TEST(ReplayerTest, ReplaysEverythingWithoutFilter) {
  std::string path = TempPath("replay_all.saqllog");
  ASSERT_TRUE(WriteEventLog(path, SampleEvents()).ok());
  StreamReplayer r(path, StreamReplayer::Filter{});
  ASSERT_TRUE(r.status().ok());
  EventBatch batch;
  size_t total = 0;
  while (r.NextBatch(2, &batch)) total += batch.size();
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(r.replayed(), 3u);
  EXPECT_EQ(r.filtered_out(), 0u);
}

TEST(ReplayerTest, HostFilter) {
  std::string path = TempPath("replay_host.saqllog");
  ASSERT_TRUE(WriteEventLog(path, SampleEvents()).ok());
  StreamReplayer::Filter f;
  f.hosts = {"h1"};
  StreamReplayer r(path, f);
  EventBatch batch;
  size_t total = 0;
  while (r.NextBatch(10, &batch)) {
    for (const Event& e : batch) EXPECT_EQ(e.agent_id, "h1");
    total += batch.size();
  }
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(r.filtered_out(), 1u);
}

TEST(ReplayerTest, TimeRangeFilter) {
  std::string path = TempPath("replay_time.saqllog");
  ASSERT_TRUE(WriteEventLog(path, SampleEvents()).ok());
  StreamReplayer::Filter f;
  f.start_ts = 15 * kSecond;
  f.end_ts = 25 * kSecond;
  StreamReplayer r(path, f);
  EventBatch batch;
  size_t total = 0;
  while (r.NextBatch(10, &batch)) total += batch.size();
  EXPECT_EQ(total, 1u);  // only the 20s event
}

TEST(ReplayerTest, SimulatorRoundTripThroughLog) {
  // The demo's record/replay loop: simulate, store, replay, compare.
  EnterpriseSimulator::Options opts;
  opts.num_workstations = 1;
  opts.duration = kMinute;
  opts.events_per_host_per_second = 5;
  EnterpriseSimulator sim(opts);
  EventBatch events = sim.Generate();
  std::string path = TempPath("sim_roundtrip.saqllog");
  ASSERT_TRUE(WriteEventLog(path, events).ok());
  StreamReplayer r(path, StreamReplayer::Filter{});
  EventBatch batch, all;
  while (r.NextBatch(512, &batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(all.size(), events.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].id, events[i].id);
    EXPECT_EQ(all[i].ts, events[i].ts);
  }
}

TEST(ReplayerTest, PacedReplayTakesWallTime) {
  // 2 events 1 second of event time apart at 20x speed: >= ~50ms wall.
  std::string path = TempPath("paced.saqllog");
  EventBatch events;
  events.push_back(
      EventBuilder().Id(1).At(0).OnHost("h").Subject("p").Build());
  events.push_back(EventBuilder()
                       .Id(2)
                       .At(kSecond)
                       .OnHost("h")
                       .Subject("p")
                       .Build());
  ASSERT_TRUE(WriteEventLog(path, events).ok());
  StreamReplayer::Filter f;
  f.speed = 20.0;
  StreamReplayer r(path, f);
  auto start = std::chrono::steady_clock::now();
  EventBatch batch;
  while (r.NextBatch(10, &batch)) {
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 45);
}

}  // namespace
}  // namespace saql
