#include "parser/analyzer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace saql {
namespace {

AnalyzedQueryPtr MustCompile(const std::string& text) {
  Result<AnalyzedQueryPtr> r = CompileSaql(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : nullptr;
}

Status CompileError(const std::string& text) {
  Result<AnalyzedQueryPtr> r = CompileSaql(text);
  EXPECT_FALSE(r.ok()) << "expected semantic failure for: " << text;
  return r.ok() ? Status::Ok() : r.status();
}

// ---------------------------------------------------------------------------
// The paper queries must analyze cleanly.
// ---------------------------------------------------------------------------

TEST(PaperQueriesAnalysis, Query1Bindings) {
  AnalyzedQueryPtr aq =
      MustCompile(testing::ReadQueryFile("query1_rule.saql"));
  ASSERT_TRUE(aq);
  // f1 occurs in two patterns (written by evt2, read by evt3) — the shared
  // variable that ties the dump file together.
  ASSERT_EQ(aq->entity_vars.at("f1").size(), 2u);
  EXPECT_EQ(aq->entity_vars.at("f1")[0].pattern_index, 1);
  EXPECT_EQ(aq->entity_vars.at("f1")[1].pattern_index, 2);
  // p4 likewise (reads dump, sends it out).
  ASSERT_EQ(aq->entity_vars.at("p4").size(), 2u);
  EXPECT_TRUE(aq->ordered);
  EXPECT_EQ(aq->temporal_order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PaperQueriesAnalysis, Query2StateAndGroups) {
  AnalyzedQueryPtr aq =
      MustCompile(testing::ReadQueryFile("query2_timeseries.saql"));
  ASSERT_TRUE(aq);
  EXPECT_TRUE(aq->IsStateful());
  EXPECT_EQ(aq->state_field_index.at("avg_amount"), 0);
  ASSERT_EQ(aq->group_keys.size(), 1u);
  EXPECT_EQ(aq->group_keys[0].field, "exe_name");  // default field of proc
  EXPECT_EQ(aq->group_keys[0].source, ResolvedGroupKey::Source::kSubject);
}

TEST(PaperQueriesAnalysis, Query3Invariant) {
  AnalyzedQueryPtr aq =
      MustCompile(testing::ReadQueryFile("query3_invariant.saql"));
  ASSERT_TRUE(aq);
  EXPECT_TRUE(aq->HasInvariant());
  ASSERT_EQ(aq->invariant_vars.size(), 1u);
  EXPECT_EQ(aq->invariant_vars[0], "a");
}

TEST(PaperQueriesAnalysis, Query4Cluster) {
  AnalyzedQueryPtr aq =
      MustCompile(testing::ReadQueryFile("query4_outlier.saql"));
  ASSERT_TRUE(aq);
  EXPECT_TRUE(aq->HasCluster());
  EXPECT_EQ(aq->cluster_method.kind, ClusterMethod::Kind::kDbscan);
  EXPECT_DOUBLE_EQ(aq->cluster_method.eps, 100000.0);
  EXPECT_EQ(aq->cluster_method.min_pts, 5);
  EXPECT_TRUE(aq->cluster_method.euclidean);
  ASSERT_EQ(aq->group_keys.size(), 1u);
  EXPECT_EQ(aq->group_keys[0].field, "dstip");
  EXPECT_EQ(aq->group_keys[0].source, ResolvedGroupKey::Source::kObject);
}

// ---------------------------------------------------------------------------
// Validation rules.
// ---------------------------------------------------------------------------

TEST(AnalyzerTest, DuplicateAliasRejected) {
  Status s = CompileError(
      "proc a read file f as e proc b read file g as e return a");
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
}

TEST(AnalyzerTest, ConflictingVariableTypesRejected) {
  Status s = CompileError(
      "proc p read file x as e1 proc p read ip x as e2 return p");
  EXPECT_NE(s.message().find("conflicting"), std::string::npos);
}

TEST(AnalyzerTest, SharedVariableAcrossPatternsAllowed) {
  AnalyzedQueryPtr aq = MustCompile(
      "proc p write file f as e1 proc q read file f as e2 return p, q, f");
  ASSERT_TRUE(aq);
  EXPECT_EQ(aq->entity_vars.at("f").size(), 2u);
}

TEST(AnalyzerTest, UnknownConstraintFieldRejected) {
  Status s = CompileError("proc p[dstip=\"1.2.3.4\"] read file f as e return p");
  EXPECT_NE(s.message().find("no attribute"), std::string::npos);
}

TEST(AnalyzerTest, UnknownGlobalConstraintRejected) {
  CompileError("colour = red proc p read file f as e return p");
}

TEST(AnalyzerTest, AgentIdGlobalConstraintAccepted) {
  EXPECT_TRUE(MustCompile(
      "agentid = \"host-1\" proc p read file f as e return p"));
}

TEST(AnalyzerTest, TemporalUndeclaredAliasRejected) {
  Status s = CompileError(
      "proc p read file f as e1 proc q read file g as e2 "
      "with e1 -> e9 return p");
  EXPECT_NE(s.message().find("undeclared"), std::string::npos);
}

TEST(AnalyzerTest, TemporalDuplicateAliasRejected) {
  Status s = CompileError(
      "proc p read file f as e1 proc q read file g as e2 "
      "with e1 -> e1 return p");
  EXPECT_NE(s.message().find("twice"), std::string::npos);
}

TEST(AnalyzerTest, StatefulQueryRequiresWindow) {
  Status s = CompileError(
      "proc p read file f as e "
      "state ss { c := count() } group by p "
      "return p, ss.c");
  EXPECT_NE(s.message().find("window"), std::string::npos);
}

TEST(AnalyzerTest, InvariantRequiresState) {
  Status s = CompileError(
      "proc p read file f as e #time(1 min) "
      "invariant[5] { a := empty_set } return p");
  EXPECT_NE(s.message().find("state"), std::string::npos);
}

TEST(AnalyzerTest, ClusterRequiresState) {
  Status s = CompileError(
      "proc p read file f as e #time(1 min) "
      "cluster(points=all(e.amount), distance=\"ed\", "
      "method=\"DBSCAN(1,2)\") return p");
  EXPECT_NE(s.message().find("state"), std::string::npos);
}

TEST(AnalyzerTest, DuplicateStateFieldRejected) {
  CompileError(
      "proc p read file f as e #time(1 min) "
      "state ss { c := count() c := count() } group by p return ss.c");
}

TEST(AnalyzerTest, StateFieldWithoutAggregateRejected) {
  Status s = CompileError(
      "proc p read file f as e #time(1 min) "
      "state ss { c := e.amount + 1 } group by p return ss.c");
  EXPECT_NE(s.message().find("aggregate"), std::string::npos);
}

TEST(AnalyzerTest, NestedAggregatesRejected) {
  Status s = CompileError(
      "proc p read file f as e #time(1 min) "
      "state ss { c := avg(sum(e.amount)) } group by p return ss.c");
  EXPECT_NE(s.message().find("nested"), std::string::npos);
}

TEST(AnalyzerTest, AggregateOutsideStateRejected) {
  Status s = CompileError(
      "proc p read file f as e alert avg(e.amount) > 1 return p");
  EXPECT_NE(s.message().find("state field"), std::string::npos);
}

TEST(AnalyzerTest, UnknownGroupKeyRejected) {
  CompileError(
      "proc p read file f as e #time(1 min) "
      "state ss { c := count() } group by zz return ss.c");
}

TEST(AnalyzerTest, GroupByEventAliasFieldAllowed) {
  AnalyzedQueryPtr aq = MustCompile(
      "proc p read file f as e #time(1 min) "
      "state ss { c := count() } group by e.agentid "
      "return e.agentid, ss.c");
  ASSERT_TRUE(aq);
  EXPECT_EQ(aq->group_keys[0].source, ResolvedGroupKey::Source::kEvent);
  EXPECT_EQ(aq->group_keys[0].field, "agentid");
}

TEST(AnalyzerTest, StateHistoryOutOfRangeRejected) {
  Status s = CompileError(
      "proc p write ip i as e #time(1 min) "
      "state[2] ss { a := avg(e.amount) } group by p "
      "alert ss[2].a > 0 return p");
  EXPECT_NE(s.message().find("out of range"), std::string::npos);
}

TEST(AnalyzerTest, UnknownStateFieldRejected) {
  Status s = CompileError(
      "proc p write ip i as e #time(1 min) "
      "state ss { a := avg(e.amount) } group by p "
      "alert ss.b > 0 return p");
  EXPECT_NE(s.message().find("no field"), std::string::npos);
}

TEST(AnalyzerTest, NonGroupKeyEntityRefInStatefulAlertRejected) {
  // `i` is not a group key, so its per-event value is unavailable at alert
  // time.
  Status s = CompileError(
      "proc p write ip i as e #time(1 min) "
      "state ss { a := avg(e.amount) } group by p "
      "alert ss.a > 0 && i.dstip == \"1.1.1.1\" return p");
  EXPECT_NE(s.message().find("group-by"), std::string::npos);
}

TEST(AnalyzerTest, InvariantUpdateOfUndeclaredVarRejected) {
  Status s = CompileError(
      "proc p start proc c as e #time(10 s) "
      "state ss { s := set(c.exe_name) } group by p "
      "invariant[5] { b = b union ss.s } "
      "alert |ss.s| > 0 return p");
  EXPECT_NE(s.message().find("undeclared"), std::string::npos);
}

TEST(AnalyzerTest, ClusterUnknownDistanceRejected) {
  Status s = CompileError(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by i.dstip "
      "cluster(points=all(ss.amt), distance=\"cosine\", "
      "method=\"DBSCAN(1,2)\") "
      "alert cluster.outlier return i.dstip");
  EXPECT_NE(s.message().find("distance"), std::string::npos);
}

TEST(AnalyzerTest, ClusterMalformedMethodRejected) {
  CompileError(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by i.dstip "
      "cluster(points=all(ss.amt), distance=\"ed\", method=\"DBSCAN\") "
      "alert cluster.outlier return i.dstip");
}

TEST(AnalyzerTest, ClusterUnknownMethodRejected) {
  Status s = CompileError(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by i.dstip "
      "cluster(points=all(ss.amt), distance=\"ed\", method=\"KMEANS(3)\") "
      "alert cluster.outlier return i.dstip");
  EXPECT_NE(s.message().find("unknown cluster method"), std::string::npos);
}

TEST(AnalyzerTest, ClusterAttrWithoutClusterSpecRejected) {
  Status s = CompileError(
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by i.dstip "
      "alert cluster.outlier return i.dstip");
  // `cluster` resolves as an unknown name since no cluster spec exists.
  EXPECT_EQ(s.code(), StatusCode::kSemanticError);
}

TEST(AnalyzerTest, UnknownNameInAlertRejected) {
  Status s = CompileError(
      "proc p read file f as e alert zz > 1 return p");
  EXPECT_NE(s.message().find("unknown name"), std::string::npos);
}

TEST(AnalyzerTest, UnknownFunctionRejected) {
  Status s = CompileError(
      "proc p read file f as e alert frobnicate(1) > 1 return p");
  EXPECT_NE(s.message().find("unknown function"), std::string::npos);
}

TEST(AnalyzerTest, RuleQueryEntityRefsAllowedInAlert) {
  EXPECT_TRUE(MustCompile(
      "proc p read file f as e "
      "alert e.amount > 100 && p.exe_name == \"x.exe\" return p, f"));
}

TEST(AnalyzerTest, MathFunctionsAccepted) {
  EXPECT_TRUE(MustCompile(
      "proc p read file f as e alert abs(e.amount) > sqrt(100) return p"));
}

TEST(AnalyzerTest, AggregateArgumentCannotReadState) {
  Status s = CompileError(
      "proc p write ip i as e #time(1 min) "
      "state ss { a := avg(e.amount) b := sum(ss.a) } group by p "
      "return ss.a");
  EXPECT_EQ(s.code(), StatusCode::kSemanticError);
}

TEST(AnalyzerTest, IsAggregateFunctionTable) {
  EXPECT_TRUE(IsAggregateFunction("avg"));
  EXPECT_TRUE(IsAggregateFunction("set"));
  EXPECT_TRUE(IsAggregateFunction("count_distinct"));
  EXPECT_FALSE(IsAggregateFunction("all"));
  EXPECT_FALSE(IsAggregateFunction("abs"));
}

}  // namespace
}  // namespace saql
