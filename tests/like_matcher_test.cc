#include "core/like_matcher.h"

#include <string>

#include <gtest/gtest.h>

// The process-wide allocation counter behind MatchesDoesNotAllocate lives
// in tests/alloc_counter.cc (shared with the CompiledConstraint
// un-interned-fallback regression): LikeMatcher::Matches used to lower a
// copy of the text on every call, taxing every string constraint on the
// per-event hot path.
#include "alloc_counter.h"

namespace saql {
namespace {

TEST(LikeMatcherTest, ExactMatchIsCaseInsensitive) {
  LikeMatcher m("cmd.exe");
  EXPECT_TRUE(m.is_exact());
  EXPECT_TRUE(m.Matches("cmd.exe"));
  EXPECT_TRUE(m.Matches("CMD.EXE"));
  EXPECT_FALSE(m.Matches("cmd.exe.bak"));
}

TEST(LikeMatcherTest, SuffixPattern) {
  // The paper's queries constrain executables with a leading %:
  // proc p1["%cmd.exe"].
  LikeMatcher m("%cmd.exe");
  EXPECT_TRUE(m.Matches("cmd.exe"));
  EXPECT_TRUE(m.Matches("C:\\Windows\\System32\\cmd.exe"));
  EXPECT_FALSE(m.Matches("cmd.exe.txt"));
}

TEST(LikeMatcherTest, PrefixPattern) {
  LikeMatcher m("C:\\Windows\\%");
  EXPECT_TRUE(m.Matches("C:\\Windows\\notepad.exe"));
  EXPECT_TRUE(m.Matches("c:\\windows\\"));
  EXPECT_FALSE(m.Matches("D:\\Windows\\notepad.exe"));
}

TEST(LikeMatcherTest, ContainsPattern) {
  LikeMatcher m("%temp%");
  EXPECT_TRUE(m.Matches("C:\\Users\\bob\\AppData\\Temp\\x.dll"));
  EXPECT_TRUE(m.Matches("temp"));
  EXPECT_FALSE(m.Matches("tmp"));
}

TEST(LikeMatcherTest, UnderscoreMatchesOneChar) {
  LikeMatcher m("backup_.dmp");
  EXPECT_TRUE(m.Matches("backup1.dmp"));
  EXPECT_TRUE(m.Matches("backup2.dmp"));
  EXPECT_FALSE(m.Matches("backup12.dmp"));
  EXPECT_FALSE(m.Matches("backup.dmp"));
}

TEST(LikeMatcherTest, GeneralPatternWithMiddlePercent) {
  LikeMatcher m("osql%.exe");
  EXPECT_TRUE(m.Matches("osql.exe"));
  EXPECT_TRUE(m.Matches("osql64.exe"));
  EXPECT_FALSE(m.Matches("osql.exe.bak"));
}

TEST(LikeMatcherTest, MultiplePercents) {
  LikeMatcher m("%sql%serv%");
  EXPECT_TRUE(m.Matches("sqlservr.exe"));
  EXPECT_TRUE(m.Matches("C:\\mssql\\sqlserver"));
  EXPECT_FALSE(m.Matches("mysql.exe"));
}

TEST(LikeMatcherTest, PercentAloneMatchesEverything) {
  LikeMatcher m("%");
  EXPECT_TRUE(m.Matches(""));
  EXPECT_TRUE(m.Matches("anything"));
}

TEST(LikeMatcherTest, EmptyPatternMatchesOnlyEmpty) {
  LikeMatcher m("");
  EXPECT_TRUE(m.Matches(""));
  EXPECT_FALSE(m.Matches("a"));
}

TEST(LikeMatcherTest, BacktrackingCase) {
  LikeMatcher m("%ab%ab");
  EXPECT_TRUE(m.Matches("abab"));
  EXPECT_TRUE(m.Matches("xxabyyab"));
  EXPECT_TRUE(m.Matches("ababab"));
  EXPECT_FALSE(m.Matches("abba"));
}

TEST(LikeMatcherTest, MixedCaseTextAcrossAllKinds) {
  // The in-place comparison lowers text bytes on the fly; every matcher
  // kind must stay case-insensitive on the text side.
  EXPECT_TRUE(LikeMatcher("cmd.exe").Matches("CmD.eXe"));
  EXPECT_TRUE(LikeMatcher("%cmd.exe").Matches("C:\\SYS\\CMD.EXE"));
  EXPECT_TRUE(LikeMatcher("c:\\win%").Matches("C:\\WINDOWS\\x"));
  EXPECT_TRUE(LikeMatcher("%temp%").Matches("c:\\TEMP\\y"));
  EXPECT_TRUE(LikeMatcher("osql%.exe").Matches("OSQL64.EXE"));
  EXPECT_TRUE(LikeMatcher("backup_.dmp").Matches("BACKUP1.DMP"));
}

TEST(LikeMatcherTest, MatchesDoesNotAllocate) {
  // Regression guard for the per-call lowered copy: matching must be
  // allocation-free for every matcher kind. If this fails, something put
  // a per-match string materialization back on the hot path.
  LikeMatcher exact("cmd.exe");
  LikeMatcher suffix("%cmd.exe");
  LikeMatcher prefix("c:\\windows\\%");
  LikeMatcher contains("%temp%");
  LikeMatcher general("%c_d%.exe");
  const std::string text = "C:\\Windows\\Temp\\System32\\cmd.exe";

  size_t hits = 0;
  size_t before = testing::HeapAllocs();
  for (int i = 0; i < 1000; ++i) {
    hits += exact.Matches(text);
    hits += suffix.Matches(text);
    hits += prefix.Matches(text);
    hits += contains.Matches(text);
    hits += general.Matches(text);
  }
  size_t after = testing::HeapAllocs();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(hits, 4000u);  // all but exact match the deep path
}

}  // namespace
}  // namespace saql
