#include "core/like_matcher.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

TEST(LikeMatcherTest, ExactMatchIsCaseInsensitive) {
  LikeMatcher m("cmd.exe");
  EXPECT_TRUE(m.is_exact());
  EXPECT_TRUE(m.Matches("cmd.exe"));
  EXPECT_TRUE(m.Matches("CMD.EXE"));
  EXPECT_FALSE(m.Matches("cmd.exe.bak"));
}

TEST(LikeMatcherTest, SuffixPattern) {
  // The paper's queries constrain executables with a leading %:
  // proc p1["%cmd.exe"].
  LikeMatcher m("%cmd.exe");
  EXPECT_TRUE(m.Matches("cmd.exe"));
  EXPECT_TRUE(m.Matches("C:\\Windows\\System32\\cmd.exe"));
  EXPECT_FALSE(m.Matches("cmd.exe.txt"));
}

TEST(LikeMatcherTest, PrefixPattern) {
  LikeMatcher m("C:\\Windows\\%");
  EXPECT_TRUE(m.Matches("C:\\Windows\\notepad.exe"));
  EXPECT_TRUE(m.Matches("c:\\windows\\"));
  EXPECT_FALSE(m.Matches("D:\\Windows\\notepad.exe"));
}

TEST(LikeMatcherTest, ContainsPattern) {
  LikeMatcher m("%temp%");
  EXPECT_TRUE(m.Matches("C:\\Users\\bob\\AppData\\Temp\\x.dll"));
  EXPECT_TRUE(m.Matches("temp"));
  EXPECT_FALSE(m.Matches("tmp"));
}

TEST(LikeMatcherTest, UnderscoreMatchesOneChar) {
  LikeMatcher m("backup_.dmp");
  EXPECT_TRUE(m.Matches("backup1.dmp"));
  EXPECT_TRUE(m.Matches("backup2.dmp"));
  EXPECT_FALSE(m.Matches("backup12.dmp"));
  EXPECT_FALSE(m.Matches("backup.dmp"));
}

TEST(LikeMatcherTest, GeneralPatternWithMiddlePercent) {
  LikeMatcher m("osql%.exe");
  EXPECT_TRUE(m.Matches("osql.exe"));
  EXPECT_TRUE(m.Matches("osql64.exe"));
  EXPECT_FALSE(m.Matches("osql.exe.bak"));
}

TEST(LikeMatcherTest, MultiplePercents) {
  LikeMatcher m("%sql%serv%");
  EXPECT_TRUE(m.Matches("sqlservr.exe"));
  EXPECT_TRUE(m.Matches("C:\\mssql\\sqlserver"));
  EXPECT_FALSE(m.Matches("mysql.exe"));
}

TEST(LikeMatcherTest, PercentAloneMatchesEverything) {
  LikeMatcher m("%");
  EXPECT_TRUE(m.Matches(""));
  EXPECT_TRUE(m.Matches("anything"));
}

TEST(LikeMatcherTest, EmptyPatternMatchesOnlyEmpty) {
  LikeMatcher m("");
  EXPECT_TRUE(m.Matches(""));
  EXPECT_FALSE(m.Matches("a"));
}

TEST(LikeMatcherTest, BacktrackingCase) {
  LikeMatcher m("%ab%ab");
  EXPECT_TRUE(m.Matches("abab"));
  EXPECT_TRUE(m.Matches("xxabyyab"));
  EXPECT_TRUE(m.Matches("ababab"));
  EXPECT_FALSE(m.Matches("abba"));
}

}  // namespace
}  // namespace saql
