#include "engine/error_reporter.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

TEST(ErrorReporterTest, StartsEmpty) {
  ErrorReporter r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.total(), 0u);
  EXPECT_EQ(r.ToString(), "(no errors)");
}

TEST(ErrorReporterTest, RecordsDistinctErrors) {
  ErrorReporter r;
  r.Report("q1", Status::RuntimeError("division by zero"));
  r.Report("q2", Status::NotFound("field missing"));
  EXPECT_EQ(r.total(), 2u);
  auto entries = r.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, "q1");
  EXPECT_EQ(entries[1].query, "q2");
}

TEST(ErrorReporterTest, DeduplicatesIdenticalErrors) {
  ErrorReporter r;
  for (int i = 0; i < 5; ++i) {
    r.Report("q", Status::RuntimeError("same message"));
  }
  EXPECT_EQ(r.total(), 5u);
  ASSERT_EQ(r.entries().size(), 1u);
  EXPECT_EQ(r.entries()[0].count, 5u);
}

TEST(ErrorReporterTest, SameMessageDifferentQueryIsDistinct) {
  ErrorReporter r;
  r.Report("q1", Status::RuntimeError("x"));
  r.Report("q2", Status::RuntimeError("x"));
  EXPECT_EQ(r.entries().size(), 2u);
}

TEST(ErrorReporterTest, IgnoresOkStatus) {
  ErrorReporter r;
  r.Report("q", Status::Ok());
  EXPECT_TRUE(r.empty());
}

TEST(ErrorReporterTest, BoundedEntries) {
  ErrorReporter r(/*max_entries=*/3);
  for (int i = 0; i < 10; ++i) {
    r.Report("q", Status::RuntimeError("err " + std::to_string(i)));
  }
  EXPECT_EQ(r.entries().size(), 3u);
  EXPECT_EQ(r.total(), 10u);
  EXPECT_NE(r.ToString().find("more distinct errors"), std::string::npos);
}

TEST(ErrorReporterTest, ToStringShowsCounts) {
  ErrorReporter r;
  r.Report("q", Status::RuntimeError("boom"));
  r.Report("q", Status::RuntimeError("boom"));
  std::string s = r.ToString();
  EXPECT_NE(s.find("[q]"), std::string::npos);
  EXPECT_NE(s.find("boom"), std::string::npos);
  EXPECT_NE(s.find("(x2)"), std::string::npos);
}

TEST(ErrorReporterTest, ClearResets) {
  ErrorReporter r;
  r.Report("q", Status::RuntimeError("boom"));
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.entries().empty());
}

}  // namespace
}  // namespace saql
