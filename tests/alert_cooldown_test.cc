#include <gtest/gtest.h>

#include "engine/compiled_query.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

Event NetWrite(const std::string& exe, int64_t amount, Timestamp ts,
               int64_t pid = 100) {
  return EventBuilder()
      .At(ts)
      .OnHost("h1")
      .Subject(exe, pid)
      .Op(EventOp::kWrite)
      .NetObject("1.2.3.4")
      .Amount(amount)
      .Build();
}

std::unique_ptr<CompiledQuery> Compile(const std::string& text,
                                       Duration cooldown) {
  CompiledQuery::Options opts;
  opts.alert_cooldown = cooldown;
  Result<std::unique_ptr<CompiledQuery>> q =
      CompiledQuery::Create(CompileSaql(text).value(), "q", opts);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).value();
}

const char* kWindowQuery =
    "proc p write ip i as e #time(10 s) "
    "state ss { amt := sum(e.amount) } group by p "
    "alert ss.amt > 100 return p, ss.amt";

TEST(AlertCooldownTest, SuppressesRepeatedGroupAlerts) {
  auto q = Compile(kWindowQuery, /*cooldown=*/kMinute);
  std::vector<Alert> alerts;
  q->SetAlertSink([&](const Alert& a) { alerts.push_back(a); });
  // Six consecutive 10s windows all above the threshold.
  for (int w = 0; w < 6; ++w) {
    q->OnEvent(NetWrite("noisy.exe", 500, w * 10 * kSecond + kSecond));
  }
  q->OnFinish();
  // Windows end at 10s..60s; only 10s and the 70s-later... with a 60s
  // cooldown the first (end=10s) fires, the rest (20..60s) are within
  // cooldown. One alert total.
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].ts, 10 * kSecond);
}

TEST(AlertCooldownTest, FiresAgainAfterCooldownElapses) {
  auto q = Compile(kWindowQuery, /*cooldown=*/30 * kSecond);
  std::vector<Alert> alerts;
  q->SetAlertSink([&](const Alert& a) { alerts.push_back(a); });
  for (int w = 0; w < 6; ++w) {
    q->OnEvent(NetWrite("noisy.exe", 500, w * 10 * kSecond + kSecond));
  }
  q->OnFinish();
  // Window ends: 10,20,30,40,50,60s. Fire at 10s; 20/30s suppressed
  // (<30s); fire at 40s; 50/60s suppressed.
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].ts, 10 * kSecond);
  EXPECT_EQ(alerts[1].ts, 40 * kSecond);
}

TEST(AlertCooldownTest, GroupsCooldownIndependently) {
  auto q = Compile(kWindowQuery, /*cooldown=*/kMinute);
  std::vector<Alert> alerts;
  q->SetAlertSink([&](const Alert& a) { alerts.push_back(a); });
  q->OnEvent(NetWrite("a.exe", 500, kSecond, 1));
  q->OnEvent(NetWrite("b.exe", 500, 2 * kSecond, 2));
  q->OnEvent(NetWrite("a.exe", 500, 11 * kSecond, 1));  // suppressed later
  q->OnEvent(NetWrite("b.exe", 500, 12 * kSecond, 2));  // suppressed later
  q->OnFinish();
  // Each group fires once (first window), second window suppressed.
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_NE(alerts[0].group, alerts[1].group);
}

TEST(AlertCooldownTest, DisabledByDefault) {
  auto q = Compile(kWindowQuery, /*cooldown=*/0);
  std::vector<Alert> alerts;
  q->SetAlertSink([&](const Alert& a) { alerts.push_back(a); });
  for (int w = 0; w < 4; ++w) {
    q->OnEvent(NetWrite("noisy.exe", 500, w * 10 * kSecond + kSecond));
  }
  q->OnFinish();
  EXPECT_EQ(alerts.size(), 4u);
}

TEST(AlertCooldownTest, AppliesToRuleQueriesGlobally) {
  auto q = Compile(
      "proc p[\"%m.exe\"] write ip i as e alert e.amount > 10 return p, i",
      /*cooldown=*/kMinute);
  std::vector<Alert> alerts;
  q->SetAlertSink([&](const Alert& a) { alerts.push_back(a); });
  q->OnEvent(NetWrite("m.exe", 100, kSecond));
  q->OnEvent(NetWrite("m.exe", 100, 2 * kSecond));   // suppressed
  q->OnEvent(NetWrite("m.exe", 100, 2 * kMinute));   // past cooldown
  q->OnFinish();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].ts, kSecond);
  EXPECT_EQ(alerts[1].ts, 2 * kMinute);
}

}  // namespace
}  // namespace saql
