// Differential matching harness for the shared member-side
// ConstraintIndex: on seeded random query sets (shared and disjoint
// constraint pools; eq / ne / LIKE / numeric ops; stateless and stateful
// queries) and seeded random event batches, index-driven matching must
// agree with brute-force matching on
//   - the per-event member *set* (which members' full conjunctions pass),
//   - every member's QueryStats transitions, and
//   - the emitted alert sequence,
// across ≥1000 generated cases, and end-to-end through `SaqlEngine` —
// including the sharded pipeline at 1/2/4 lanes — on a sampled subset
// plus the full checked-in query corpus.

#include "engine/constraint_index.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "collect/enterprise_sim.h"
#include "core/interner.h"
#include "engine/engine.h"
#include "engine/scheduler.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

// ---------------------------------------------------------------------------
// Seeded query/event generator.
// ---------------------------------------------------------------------------

struct Shape {
  const char* op_spelling;
  const char* object_decl;  // "ip i" / "file f" / "proc q"
  EventOp op;
  EntityType object_type;
};

constexpr Shape kGenShapes[] = {
    {"write", "ip i", EventOp::kWrite, EntityType::kNetwork},
    {"read", "file f", EventOp::kRead, EntityType::kFile},
    {"delete", "file f", EventOp::kDelete, EntityType::kFile},
    {"start", "proc q", EventOp::kStart, EntityType::kProcess},
};

class CaseGenerator {
 public:
  explicit CaseGenerator(uint64_t seed) : rng_(seed) {}

  int Pick(int n) {
    return static_cast<int>(rng_() % static_cast<uint64_t>(n));
  }
  bool Chance(int pct) { return Pick(100) < pct; }

  // Values come from small shared pools (so constraints repeat across
  // members — the sharing the index exploits); event attributes draw from
  // the same pools plus out-of-pool noise.
  std::string Exe() { return "app" + std::to_string(Pick(6)) + ".exe"; }
  std::string User() { return "user" + std::to_string(Pick(4)); }
  std::string Host() { return "host" + std::to_string(Pick(3)); }
  std::string Path() { return "/data/f" + std::to_string(Pick(5)); }
  std::string ChildExe() {
    return "child" + std::to_string(Pick(4)) + ".exe";
  }
  std::string Ip() { return "10.0.0." + std::to_string(Pick(5) + 1); }

  std::string SubjectConstraints() {
    std::vector<std::string> cs;
    if (Chance(70)) {
      switch (Pick(4)) {
        case 0:  // exact interned equality — the probe-group path
          cs.push_back("exe_name = \"" + MaybeUpper(Exe()) + "\"");
          break;
        case 1:  // suffix LIKE — residual slot
          cs.push_back("exe_name = \"%" + Exe() + "\"");
          break;
        case 2:  // exact inequality — residual slot
          cs.push_back("exe_name != \"" + Exe() + "\"");
          break;
        default:
          cs.push_back("user = \"" + User() + "\"");
      }
    }
    if (Chance(25)) {
      cs.push_back("pid " + std::string(Chance(50) ? ">" : "<=") + " " +
                   std::to_string(1000 + Pick(6) * 20));
    }
    return Join(cs);
  }

  std::string ObjectConstraints(EntityType type) {
    std::vector<std::string> cs;
    switch (type) {
      case EntityType::kFile:
        if (Chance(60)) {
          cs.push_back(Chance(50)
                           ? "name = \"" + Path() + "\""
                           : "name = \"%f" + std::to_string(Pick(5)) + "\"");
        }
        break;
      case EntityType::kProcess:
        if (Chance(60)) cs.push_back("exe_name = \"" + ChildExe() + "\"");
        if (Chance(20)) {
          cs.push_back("pid > " + std::to_string(5000 + Pick(3)));
        }
        break;
      case EntityType::kNetwork:
        if (Chance(60)) cs.push_back("dstip = \"" + Ip() + "\"");
        if (Chance(20)) {
          cs.push_back("dport > " + std::to_string(Pick(2) * 400));
        }
        break;
    }
    return Join(cs);
  }

  std::string Query(const Shape& shape) {
    std::ostringstream q;
    if (Chance(30)) {
      q << "agentid " << (Chance(75) ? "=" : "!=") << " \"" << Host()
        << "\"\n";
    }
    std::string subj = SubjectConstraints();
    std::string obj = ObjectConstraints(shape.object_type);
    q << "proc p";
    if (!subj.empty()) q << "[" << subj << "]";
    q << " " << shape.op_spelling << " " << shape.object_decl;
    if (!obj.empty()) q << "[" << obj << "]";
    q << " as e\n";
    if (Chance(25)) {
      q << "#time(10 s)\n"
        << "state ss { "
        << (Chance(50) ? "c := count()" : "c := sum(e.amount)")
        << " } group by p\n"
        << "alert ss.c > " << Pick(2) << "\n"
        << "return p, ss.c\n";
    } else {
      q << "return " << (Chance(20) ? "distinct " : "") << "p, e.amount\n";
    }
    return q.str();
  }

  Event MakeEvent(uint64_t id, Timestamp ts, const Shape& shape) {
    Event e = EventBuilder()
                  .Id(id)
                  .At(ts)
                  .OnHost(Chance(85) ? Host() : "other-host")
                  .Subject(Chance(80) ? MaybeUpper(Exe()) : "noise.exe",
                           1000 + Pick(140))
                  .Op(shape.op)
                  .Build();
    e.subject.user = Chance(80) ? User() : "nobody";
    e.object_type = shape.object_type;
    switch (shape.object_type) {
      case EntityType::kFile:
        e.obj_file.path = Chance(80) ? Path() : "/tmp/noise";
        break;
      case EntityType::kProcess:
        e.obj_proc.exe_name = Chance(80) ? ChildExe() : "noise-child.exe";
        e.obj_proc.pid = 5000 + Pick(4);
        break;
      case EntityType::kNetwork:
        e.obj_net.dst_ip = Chance(80) ? Ip() : "192.168.9.9";
        e.obj_net.dst_port = Chance(70) ? 443 : 80;
        e.obj_net.src_ip = "10.9.9.9";
        break;
    }
    e.amount = 100 + Pick(1000);
    return e;
  }

 private:
  std::string MaybeUpper(std::string s) {
    if (!Chance(25)) return s;
    for (char& c : s) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return s;
  }

  static std::string Join(const std::vector<std::string>& cs) {
    std::string out;
    for (const std::string& c : cs) {
      if (!out.empty()) out += ", ";
      out += c;
    }
    return out;
  }

  std::mt19937_64 rng_;
};

struct GeneratedCase {
  std::vector<std::string> queries;
  EventBatch events;
  bool intern = true;
};

GeneratedCase MakeCase(uint64_t seed) {
  CaseGenerator gen(seed);
  GeneratedCase c;
  const int num_shapes = 1 + gen.Pick(3);
  int shape_idx[3];
  for (int s = 0; s < num_shapes; ++s) shape_idx[s] = gen.Pick(4);
  const int num_queries = 2 + gen.Pick(9);
  for (int i = 0; i < num_queries; ++i) {
    c.queries.push_back(
        gen.Query(kGenShapes[shape_idx[gen.Pick(num_shapes)]]));
  }
  const int num_events = 80 + gen.Pick(80);
  Timestamp ts = kSecond;
  for (int i = 0; i < num_events; ++i) {
    ts += gen.Pick(3) * kSecond;  // occasional equal timestamps
    c.events.push_back(
        gen.MakeEvent(static_cast<uint64_t>(i + 1), ts,
                      kGenShapes[shape_idx[gen.Pick(num_shapes)]]));
  }
  c.intern = gen.Chance(50);
  return c;
}

// ---------------------------------------------------------------------------
// Part A: group-level differential — 1000 cases, per-member stats + alert
// sequences, interned and un-interned events.
// ---------------------------------------------------------------------------

/// One compiled side of a differential run. Filled in place (the alert
/// sinks capture the address of `alerts`, which must stay stable).
struct CompiledSide {
  std::vector<std::unique_ptr<CompiledQuery>> queries;
  std::vector<std::pair<std::string, std::string>> alerts;  // (query, text)
  std::unique_ptr<ConcurrentQueryScheduler> scheduler;
};

void CompileSide(const std::vector<std::string>& texts, bool member_index,
                 CompiledSide* side) {
  ConcurrentQueryScheduler::Options opts;
  opts.enable_member_index = member_index;
  opts.min_index_members = 2;  // maximal index coverage for the harness
  side->scheduler = std::make_unique<ConcurrentQueryScheduler>(opts);
  auto* alerts = &side->alerts;
  for (size_t i = 0; i < texts.size(); ++i) {
    Result<AnalyzedQueryPtr> aq = CompileSaql(texts[i]);
    ASSERT_TRUE(aq.ok()) << texts[i] << "\n" << aq.status();
    std::string name = "q" + std::to_string(i);
    Result<std::unique_ptr<CompiledQuery>> q =
        CompiledQuery::Create(aq.value(), name);
    ASSERT_TRUE(q.ok()) << q.status();
    (*q)->SetAlertSink([alerts, name](const Alert& a) {
      alerts->emplace_back(name, a.ToString());
    });
    side->queries.push_back(std::move(q).value());
  }
  for (auto& q : side->queries) side->scheduler->AddQuery(q.get());
  side->scheduler->BuildGroups();
}

/// Replays `events` through the groups the way the executor would: fixed
/// batches, watermark per batch, finish at the end.
void DriveGroups(ConcurrentQueryScheduler* sched, const EventBatch& events) {
  constexpr size_t kBatch = 32;
  std::vector<QueryGroup*> groups = sched->groups();
  Timestamp max_ts = INT64_MIN;
  for (size_t off = 0; off < events.size(); off += kBatch) {
    size_t n = std::min(kBatch, events.size() - off);
    EventRefs refs;
    for (size_t k = 0; k < n; ++k) {
      const Event& e = events[off + k];
      if (e.ts > max_ts) max_ts = e.ts;
      refs.push_back(&e);
    }
    for (QueryGroup* g : groups) g->OnBatch(refs);
    for (QueryGroup* g : groups) g->OnWatermark(max_ts);
  }
  for (QueryGroup* g : groups) g->OnFinish();
}

TEST(ConstraintIndexDiffTest, ThousandGeneratedCasesGroupLevel) {
  uint64_t total_alerts = 0;
  uint64_t total_matches = 0;
  uint64_t indexed_groups = 0;
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    GeneratedCase c = MakeCase(seed);
    CompiledSide brute, indexed;
    ASSERT_NO_FATAL_FAILURE(CompileSide(c.queries, false, &brute));
    ASSERT_NO_FATAL_FAILURE(CompileSide(c.queries, true, &indexed));
    ASSERT_EQ(brute.scheduler->num_indexed_groups(), 0u);
    indexed_groups += indexed.scheduler->num_indexed_groups();

    EventBatch brute_events = c.events;  // separate buffers on purpose
    EventBatch index_events = c.events;
    if (c.intern) {
      InternEventSpan(brute_events.data(), brute_events.size());
      InternEventSpan(index_events.data(), index_events.size());
    }
    DriveGroups(brute.scheduler.get(), brute_events);
    DriveGroups(indexed.scheduler.get(), index_events);

    // Full per-member stats parity.
    for (size_t i = 0; i < brute.queries.size(); ++i) {
      const CompiledQuery::QueryStats& bs = brute.queries[i]->stats();
      const CompiledQuery::QueryStats& is = indexed.queries[i]->stats();
      ASSERT_EQ(bs.events_in, is.events_in) << "seed " << seed << " q" << i;
      ASSERT_EQ(bs.events_past_global, is.events_past_global)
          << "seed " << seed << " q" << i;
      ASSERT_EQ(bs.matches, is.matches) << "seed " << seed << " q" << i;
      ASSERT_EQ(bs.windows_closed, is.windows_closed)
          << "seed " << seed << " q" << i;
      ASSERT_EQ(bs.alerts, is.alerts) << "seed " << seed << " q" << i;
      ASSERT_EQ(bs.eval_errors, is.eval_errors)
          << "seed " << seed << " q" << i;
      total_matches += bs.matches;
    }
    // Alert *sequence* identity (member-major delivery is order-preserving
    // with the index on or off).
    ASSERT_EQ(brute.alerts, indexed.alerts) << "seed " << seed;
    total_alerts += brute.alerts.size();
  }
  // The harness must not be vacuous.
  EXPECT_GT(total_alerts, 1000u);
  EXPECT_GT(total_matches, 10000u);
  EXPECT_GT(indexed_groups, 500u);
}

TEST(ConstraintIndexDiffTest, MemberSetsMatchBruteForcePerEvent) {
  // Explicit per-event member-set differential: the index's matched /
  // passed_global bitsets must equal direct evaluation of each member's
  // compiled constraints, event by event, interned or not.
  uint64_t checked_events = 0;
  for (uint64_t seed = 2000; seed < 2200; ++seed) {
    GeneratedCase c = MakeCase(seed);
    CompiledSide side;
    ASSERT_NO_FATAL_FAILURE(CompileSide(c.queries, true, &side));
    if (c.intern) InternEventSpan(c.events.data(), c.events.size());

    // Recover each group's member list exactly like the scheduler built
    // it: registration order within equal signatures.
    std::map<std::string, std::vector<CompiledQuery*>> members_by_sig;
    for (auto& q : side.queries) {
      members_by_sig[q->GroupSignature()].push_back(q.get());
    }
    ConstraintIndex::MatchResult result;
    for (QueryGroup* g : side.scheduler->groups()) {
      const ConstraintIndex* index = g->index();
      if (index == nullptr) continue;
      const std::vector<CompiledQuery*>& members =
          members_by_sig[g->signature()];
      ASSERT_EQ(members.size(), index->num_members());
      for (const Event& e : c.events) {
        if (!g->master()->StructuralMatchAny(e)) continue;
        index->Match(e, &result);
        ++checked_events;
        for (size_t i = 0; i < members.size(); ++i) {
          ASSERT_EQ(testing::BitAt(result.passed_global, i),
                    testing::BruteForcePassesGlobal(*members[i], e))
              << "seed " << seed << " event " << e.id << " member " << i;
          ASSERT_EQ(testing::BitAt(result.matched, i),
                    testing::BruteForceMatches(*members[i], e))
              << "seed " << seed << " event " << e.id << " member " << i;
        }
      }
    }
  }
  EXPECT_GT(checked_events, 5000u);
}

// ---------------------------------------------------------------------------
// Part B: engine-level differential, including the sharded pipeline.
// ---------------------------------------------------------------------------

std::vector<std::string> RunEngineCase(const GeneratedCase& c,
                                       bool member_index, size_t shards,
                                       bool force_sharded) {
  SaqlEngine::Options opts;
  opts.enable_member_index = member_index;
  opts.num_shards = shards;
  opts.force_sharded_executor = force_sharded;
  SaqlEngine engine(opts);
  for (size_t i = 0; i < c.queries.size(); ++i) {
    Status st = engine.AddQuery(c.queries[i], "q" + std::to_string(i));
    EXPECT_TRUE(st.ok()) << c.queries[i] << "\n" << st;
  }
  VectorEventSource source(c.events);
  Status st = engine.Run(&source);
  EXPECT_TRUE(st.ok()) << st;
  std::vector<std::string> alerts;
  for (const Alert& a : engine.alerts()) alerts.push_back(a.ToString());
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

TEST(ConstraintIndexDiffTest, EngineLevelIncludingShards) {
  uint64_t total_alerts = 0;
  for (uint64_t seed = 3000; seed < 3060; ++seed) {
    GeneratedCase c = MakeCase(seed);
    std::vector<std::string> brute = RunEngineCase(c, false, 1, false);
    ASSERT_EQ(RunEngineCase(c, true, 1, false), brute) << "seed " << seed;
    ASSERT_EQ(RunEngineCase(c, true, 1, true), brute)
        << "seed " << seed << " (forced 1-shard)";
    ASSERT_EQ(RunEngineCase(c, true, 2, false), brute)
        << "seed " << seed << " (2 shards)";
    ASSERT_EQ(RunEngineCase(c, true, 4, false), brute)
        << "seed " << seed << " (4 shards)";
    total_alerts += brute.size();
  }
  EXPECT_GT(total_alerts, 50u);
}

// ---------------------------------------------------------------------------
// Checked-in corpus differential at 1 and 4 shards.
// ---------------------------------------------------------------------------

const char* const kCorpusQueries[][2] = {
    {"q1-exfiltration", "query1_rule.saql"},
    {"q2-timeseries", "query2_timeseries.saql"},
    {"q3-invariant", "query3_invariant.saql"},
    {"q4-outlier", "query4_outlier.saql"},
    {"r1-initial-compromise", "apt/r1_initial_compromise.saql"},
    {"r2-malware-infection", "apt/r2_malware_infection.saql"},
    {"r3-privilege-escalation", "apt/r3_privilege_escalation.saql"},
    {"r4-penetration", "apt/r4_penetration.saql"},
    {"a6-invariant-excel", "apt/a6_invariant_excel.saql"},
    {"a7-timeseries-network", "apt/a7_timeseries_network.saql"},
    {"a8-outlier-dbscan", "apt/a8_outlier_dbscan.saql"},
};

std::vector<std::string> RunCorpus(bool member_index, size_t shards) {
  EnterpriseSimulator::Options sopts;
  sopts.num_workstations = 2;
  sopts.duration = 15 * kMinute;
  sopts.events_per_host_per_second = 6;
  sopts.attack_offset = 6 * kMinute;
  sopts.include_attack = true;
  sopts.seed = 20200227;
  EnterpriseSimulator sim(sopts);
  auto source = sim.MakeSource();

  SaqlEngine::Options eopts;
  eopts.enable_member_index = member_index;
  eopts.num_shards = shards;
  SaqlEngine engine(eopts);
  for (const auto& [name, file] : kCorpusQueries) {
    Status st = engine.AddQuery(testing::ReadQueryFile(file), name);
    EXPECT_TRUE(st.ok()) << name << ": " << st;
  }
  Status st = engine.Run(source.get());
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(engine.errors().ToString(), "(no errors)");
  std::vector<std::string> alerts;
  for (const Alert& a : engine.alerts()) alerts.push_back(a.ToString());
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

TEST(ConstraintIndexDiffTest, CheckedInCorpusIndexOnOffOneAndFourShards) {
  std::vector<std::string> baseline = RunCorpus(false, 1);
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(RunCorpus(true, 1), baseline);
  EXPECT_EQ(RunCorpus(true, 4), baseline);
  EXPECT_EQ(RunCorpus(false, 4), baseline);
}

}  // namespace
}  // namespace saql
