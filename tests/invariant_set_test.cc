#include "anomaly/invariant_set.h"

#include <gtest/gtest.h>

namespace saql {
namespace {

TEST(InvariantSetTest, TrainingAccumulatesWithoutAlerts) {
  InvariantSet inv(3, InvariantSet::Mode::kOffline);
  EXPECT_TRUE(inv.Observe({"a"}).empty());
  EXPECT_TRUE(inv.Observe({"b"}).empty());
  EXPECT_TRUE(inv.Observe({"c"}).empty());
  EXPECT_EQ(inv.invariant(), (StringSet{"a", "b", "c"}));
  EXPECT_FALSE(inv.InTraining());
}

TEST(InvariantSetTest, OfflineDetectsUnseenValue) {
  // The paper's Query 3: child processes of Apache; a new child after
  // training is a violation.
  InvariantSet inv(2, InvariantSet::Mode::kOffline);
  inv.Observe({"php.exe", "logger.exe"});
  inv.Observe({"php.exe"});
  StringSet v = inv.Observe({"php.exe", "sbblv.exe"});
  EXPECT_EQ(v, (StringSet{"sbblv.exe"}));
}

TEST(InvariantSetTest, OfflineKeepsAlertingOnRepeat) {
  InvariantSet inv(1, InvariantSet::Mode::kOffline);
  inv.Observe({"good"});
  EXPECT_EQ(inv.Observe({"bad"}), (StringSet{"bad"}));
  EXPECT_EQ(inv.Observe({"bad"}), (StringSet{"bad"}));  // still violating
}

TEST(InvariantSetTest, OnlineAbsorbsViolations) {
  InvariantSet inv(1, InvariantSet::Mode::kOnline);
  inv.Observe({"good"});
  EXPECT_EQ(inv.Observe({"bad"}), (StringSet{"bad"}));
  EXPECT_TRUE(inv.Observe({"bad"}).empty());  // learned now
  EXPECT_EQ(inv.invariant(), (StringSet{"good", "bad"}));
}

TEST(InvariantSetTest, EmptyObservationNeverViolates) {
  InvariantSet inv(1, InvariantSet::Mode::kOffline);
  inv.Observe({"a"});
  EXPECT_TRUE(inv.Observe({}).empty());
}

TEST(InvariantSetTest, KnownSubsetNeverViolates) {
  InvariantSet inv(2, InvariantSet::Mode::kOffline);
  inv.Observe({"a", "b", "c"});
  inv.Observe({"d"});
  EXPECT_TRUE(inv.Observe({"a", "d"}).empty());
}

TEST(InvariantSetTest, WindowCounting) {
  InvariantSet inv(5, InvariantSet::Mode::kOffline);
  EXPECT_EQ(inv.windows_seen(), 0u);
  inv.Observe({"x"});
  EXPECT_EQ(inv.windows_seen(), 1u);
  EXPECT_TRUE(inv.InTraining());
  for (int i = 0; i < 4; ++i) inv.Observe({"x"});
  EXPECT_FALSE(inv.InTraining());
}

TEST(InvariantSetTest, ResetRestartsTraining) {
  InvariantSet inv(1, InvariantSet::Mode::kOffline);
  inv.Observe({"a"});
  EXPECT_FALSE(inv.Observe({"b"}).empty());
  inv.Reset();
  EXPECT_TRUE(inv.InTraining());
  EXPECT_TRUE(inv.Observe({"b"}).empty());  // training again
  EXPECT_TRUE(inv.invariant().count("b"));
}

TEST(InvariantSetTest, ZeroTrainingWindowsAlertsImmediately) {
  InvariantSet inv(0, InvariantSet::Mode::kOffline);
  EXPECT_EQ(inv.Observe({"a"}), (StringSet{"a"}));
}

/// Property: under offline mode, the invariant after training never changes.
class InvariantTrainingSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(InvariantTrainingSweep, OfflineInvariantFrozenAfterTraining) {
  size_t training = GetParam();
  InvariantSet inv(training, InvariantSet::Mode::kOffline);
  for (size_t i = 0; i < training; ++i) {
    inv.Observe({"w" + std::to_string(i)});
  }
  StringSet frozen = inv.invariant();
  for (int i = 0; i < 5; ++i) {
    inv.Observe({"new" + std::to_string(i)});
    EXPECT_EQ(inv.invariant(), frozen);
  }
}

TEST_P(InvariantTrainingSweep, ViolationsAreExactSetDifference) {
  size_t training = GetParam();
  InvariantSet inv(training, InvariantSet::Mode::kOffline);
  for (size_t i = 0; i < training; ++i) inv.Observe({"a", "b"});
  StringSet observed{"a", "c", "d"};
  StringSet violations = inv.Observe(observed);
  if (training == 0) {
    EXPECT_EQ(violations, observed);
  } else {
    EXPECT_EQ(violations, (StringSet{"c", "d"}));
  }
}

INSTANTIATE_TEST_SUITE_P(TrainingWindows, InvariantTrainingSweep,
                         ::testing::Values(0, 1, 2, 10, 100));

}  // namespace
}  // namespace saql
