#include "anomaly/moving_stats.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace saql {
namespace {

TEST(SmaTest, EmptyMeanIsZero) {
  SimpleMovingAverage sma(3);
  EXPECT_DOUBLE_EQ(sma.Mean(), 0.0);
  EXPECT_EQ(sma.Count(), 0u);
  EXPECT_FALSE(sma.Full());
}

TEST(SmaTest, PartialWindowAveragesWhatItHas) {
  SimpleMovingAverage sma(3);
  sma.Push(10);
  sma.Push(20);
  EXPECT_DOUBLE_EQ(sma.Mean(), 15.0);
  EXPECT_FALSE(sma.Full());
}

TEST(SmaTest, EvictsOldestWhenFull) {
  SimpleMovingAverage sma(3);
  sma.Push(1);
  sma.Push(2);
  sma.Push(3);
  EXPECT_TRUE(sma.Full());
  EXPECT_DOUBLE_EQ(sma.Mean(), 2.0);
  sma.Push(10);  // evicts 1
  EXPECT_DOUBLE_EQ(sma.Mean(), 5.0);
  EXPECT_EQ(sma.Count(), 3u);
}

TEST(SmaTest, AtIndexesFromNewest) {
  SimpleMovingAverage sma(3);
  sma.Push(1);
  sma.Push(2);
  sma.Push(3);
  EXPECT_DOUBLE_EQ(sma.At(0), 3.0);
  EXPECT_DOUBLE_EQ(sma.At(1), 2.0);
  EXPECT_DOUBLE_EQ(sma.At(2), 1.0);
}

TEST(SmaTest, Query2SpikeDetectionShape) {
  // Mirrors the paper's Query 2 alert: current window exceeds the 3-window
  // moving average AND an absolute floor.
  SimpleMovingAverage sma(3);
  sma.Push(9000);
  sma.Push(9500);
  sma.Push(50000);  // spike window
  double current = sma.At(0);
  bool alert = current > sma.Mean() && current > 10000;
  EXPECT_TRUE(alert);
}

TEST(SmaTest, ZeroWindowClampedToOne) {
  SimpleMovingAverage sma(0);
  sma.Push(4);
  sma.Push(8);
  EXPECT_DOUBLE_EQ(sma.Mean(), 8.0);
}

TEST(SmaTest, ResetClears) {
  SimpleMovingAverage sma(2);
  sma.Push(5);
  sma.Reset();
  EXPECT_EQ(sma.Count(), 0u);
  EXPECT_DOUBLE_EQ(sma.Mean(), 0.0);
}

TEST(EmaTest, FirstSampleSetsMean) {
  ExponentialMovingAverage ema(0.5);
  ema.Push(10);
  EXPECT_DOUBLE_EQ(ema.Mean(), 10.0);
}

TEST(EmaTest, Converges) {
  ExponentialMovingAverage ema(0.5);
  ema.Push(0);
  for (int i = 0; i < 50; ++i) ema.Push(100);
  EXPECT_NEAR(ema.Mean(), 100.0, 1e-9);
}

TEST(EmaTest, AlphaOneTracksLastSample) {
  ExponentialMovingAverage ema(1.0);
  ema.Push(5);
  ema.Push(42);
  EXPECT_DOUBLE_EQ(ema.Mean(), 42.0);
}

TEST(EmaTest, InvalidAlphaClamped) {
  ExponentialMovingAverage bad_low(-3);
  bad_low.Push(10);
  bad_low.Push(20);
  EXPECT_GT(bad_low.Mean(), 10.0);  // still averaging, no NaN/garbage
  EXPECT_LT(bad_low.Mean(), 20.0);
}

TEST(OnlineVarianceTest, MatchesClosedForm) {
  OnlineVariance ov;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) ov.Push(x);
  EXPECT_DOUBLE_EQ(ov.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(ov.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(ov.StdDev(), 2.0);
}

TEST(OnlineVarianceTest, SingleSampleHasZeroVariance) {
  OnlineVariance ov;
  ov.Push(3.0);
  EXPECT_DOUBLE_EQ(ov.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(ov.ZScore(100.0), 0.0);  // degenerate -> no signal
}

TEST(OnlineVarianceTest, ZScore) {
  OnlineVariance ov;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) ov.Push(x);
  EXPECT_DOUBLE_EQ(ov.ZScore(9.0), 2.0);
  EXPECT_DOUBLE_EQ(ov.ZScore(1.0), -2.0);
}

TEST(OnlineVarianceTest, NumericalStabilityWithLargeOffset) {
  // Welford stays stable with a large common offset where the naive
  // sum-of-squares approach catastrophically cancels.
  OnlineVariance ov;
  std::mt19937_64 rng(7);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (int i = 0; i < 10000; ++i) ov.Push(1e12 + noise(rng));
  EXPECT_NEAR(ov.Variance(), 1.0, 0.1);
}

/// Property sweep: SMA over a constant series equals the constant for any
/// window size.
class SmaWindowSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SmaWindowSweep, ConstantSeriesMeanIsConstant) {
  SimpleMovingAverage sma(GetParam());
  for (int i = 0; i < 100; ++i) sma.Push(42.0);
  EXPECT_DOUBLE_EQ(sma.Mean(), 42.0);
  EXPECT_LE(sma.Count(), GetParam());
}

TEST_P(SmaWindowSweep, MeanWithinSampleRange) {
  SimpleMovingAverage sma(GetParam());
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  for (int i = 0; i < 200; ++i) {
    sma.Push(dist(rng));
    EXPECT_GE(sma.Mean(), -50.0);
    EXPECT_LE(sma.Mean(), 50.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, SmaWindowSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 64, 1000));

}  // namespace
}  // namespace saql
