#include "engine/expr_eval.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace saql {
namespace {

/// Context with a fixed variable table for standalone expression tests.
class MapContext : public EvalContext {
 public:
  void Set(const std::string& name, Value v) { vars_[name] = std::move(v); }

  Result<Value> ResolveRef(const Expr& ref) const override {
    std::string key = ref.base;
    if (!ref.field.empty()) key += "." + ref.field;
    auto it = vars_.find(key);
    if (it == vars_.end()) return Value::Null();
    return it->second;
  }

 private:
  std::map<std::string, Value> vars_;
};

/// Parses an expression by wrapping it into a minimal query's alert clause.
ExprPtr ParseExpr(const std::string& text) {
  Result<Query> q =
      ParseSaql("proc p read file f as e alert " + text + " return p");
  EXPECT_TRUE(q.ok()) << q.status();
  return q.ok() ? std::move(q.value().alert) : nullptr;
}

Value Eval(const std::string& text, const MapContext& ctx = MapContext{}) {
  ExprPtr e = ParseExpr(text);
  EXPECT_TRUE(e != nullptr);
  Result<Value> v = EvaluateExpr(*e, ctx);
  EXPECT_TRUE(v.ok()) << v.status();
  return v.ok() ? *v : Value::Null();
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3").AsInt(), 7);
  EXPECT_DOUBLE_EQ(Eval("(1 + 2) / 2").AsFloat(), 1.5);
  EXPECT_EQ(Eval("10 % 3").AsInt(), 1);
  EXPECT_EQ(Eval("-5 + 2").AsInt(), -3);
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(Eval("3 > 2").AsBool());
  EXPECT_FALSE(Eval("3 < 2").AsBool());
  EXPECT_TRUE(Eval("2 <= 2").AsBool());
  EXPECT_TRUE(Eval("3 == 3").AsBool());
  EXPECT_TRUE(Eval("3 != 4").AsBool());
}

TEST(ExprEvalTest, LogicalShortCircuit) {
  EXPECT_TRUE(Eval("true || 1/0 > 0").AsBool());   // rhs never evaluated
  EXPECT_FALSE(Eval("false && 1/0 > 0").AsBool());
  EXPECT_TRUE(Eval("!false").AsBool());
}

TEST(ExprEvalTest, DivisionByZeroIsError) {
  ExprPtr e = ParseExpr("1 / 0");
  MapContext ctx;
  Result<Value> v = EvaluateExpr(*e, ctx);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kRuntimeError);
}

TEST(ExprEvalTest, StringEqualityCaseInsensitive) {
  MapContext ctx;
  ctx.Set("p", Value("CMD.EXE"));
  EXPECT_TRUE(Eval("p == \"cmd.exe\"", ctx).AsBool());
}

TEST(ExprEvalTest, StringEqualityLikeUpgrade) {
  MapContext ctx;
  ctx.Set("p", Value("C:\\Windows\\cmd.exe"));
  EXPECT_TRUE(Eval("p == \"%cmd.exe\"", ctx).AsBool());
  EXPECT_FALSE(Eval("p != \"%cmd.exe\"", ctx).AsBool());
  EXPECT_FALSE(Eval("p == \"%powershell.exe\"", ctx).AsBool());
}

TEST(ExprEvalTest, NullPropagationInArithmetic) {
  MapContext ctx;  // unknown refs resolve to null
  EXPECT_TRUE(Eval("missing + 1", ctx).is_null());
  EXPECT_TRUE(Eval("missing * 2", ctx).is_null());
}

TEST(ExprEvalTest, NullComparisonsAreFalse) {
  MapContext ctx;
  EXPECT_FALSE(Eval("missing > 0", ctx).AsBool());
  EXPECT_FALSE(Eval("missing == 0", ctx).AsBool());
  EXPECT_FALSE(Eval("missing != 0", ctx).AsBool());
}

TEST(ExprEvalTest, Query2AlertShapeWithMissingHistory) {
  // (ss0 > (ss0+ss1+ss2)/3) && ss0 > 10000, with ss1/ss2 null: the SMA is
  // null, the comparison false, no alert — no runtime error.
  MapContext ctx;
  ctx.Set("ss0", Value(50000.0));
  EXPECT_FALSE(
      Eval("(ss0 > (ss0 + ss1 + ss2) / 3) && (ss0 > 10000)", ctx).AsBool());
  // With full history the spike fires.
  ctx.Set("ss1", Value(1000.0));
  ctx.Set("ss2", Value(1200.0));
  EXPECT_TRUE(
      Eval("(ss0 > (ss0 + ss1 + ss2) / 3) && (ss0 > 10000)", ctx).AsBool());
}

TEST(ExprEvalTest, SetOperators) {
  MapContext ctx;
  ctx.Set("s1", Value(StringSet{"a", "b"}));
  ctx.Set("s2", Value(StringSet{"b", "c"}));
  EXPECT_EQ(Eval("s1 union s2", ctx).AsSet(), (StringSet{"a", "b", "c"}));
  EXPECT_EQ(Eval("s1 diff s2", ctx).AsSet(), (StringSet{"a"}));
  EXPECT_EQ(Eval("s1 intersect s2", ctx).AsSet(), (StringSet{"b"}));
  EXPECT_EQ(Eval("|s1 union s2|", ctx).AsInt(), 3);
}

TEST(ExprEvalTest, Query3AlertShape) {
  MapContext ctx;
  ctx.Set("observed", Value(StringSet{"php.exe", "sbblv.exe"}));
  ctx.Set("inv", Value(StringSet{"php.exe", "logger.exe"}));
  EXPECT_TRUE(Eval("|observed diff inv| > 0", ctx).AsBool());
  ctx.Set("observed", Value(StringSet{"php.exe"}));
  EXPECT_FALSE(Eval("|observed diff inv| > 0", ctx).AsBool());
}

TEST(ExprEvalTest, NullSetActsAsEmpty) {
  MapContext ctx;
  ctx.Set("s", Value(StringSet{"x"}));
  EXPECT_EQ(Eval("s union nothing", ctx).AsSet(), (StringSet{"x"}));
  EXPECT_EQ(Eval("|nothing|", ctx).AsInt(), 0);
}

TEST(ExprEvalTest, InOperator) {
  MapContext ctx;
  ctx.Set("name", Value("osql.exe"));
  ctx.Set("bad", Value(StringSet{"osql.exe", "gsecdump.exe"}));
  EXPECT_TRUE(Eval("name in bad", ctx).AsBool());
  ctx.Set("name", Value("notepad.exe"));
  EXPECT_FALSE(Eval("name in bad", ctx).AsBool());
}

TEST(ExprEvalTest, MathFunctions) {
  EXPECT_DOUBLE_EQ(Eval("abs(-4)").AsFloat(), 4.0);
  EXPECT_DOUBLE_EQ(Eval("sqrt(16)").AsFloat(), 4.0);
  EXPECT_DOUBLE_EQ(Eval("pow(2, 10)").AsFloat(), 1024.0);
  EXPECT_DOUBLE_EQ(Eval("max2(3, 7)").AsFloat(), 7.0);
  EXPECT_DOUBLE_EQ(Eval("min2(3, 7)").AsFloat(), 3.0);
}

TEST(ExprEvalTest, MathFunctionsWithNullArgGiveNull) {
  MapContext ctx;
  EXPECT_TRUE(Eval("abs(missing)", ctx).is_null());
  EXPECT_TRUE(Eval("pow(missing, 2)", ctx).is_null());
}

TEST(ExprEvalTest, SqrtOfNegativeIsError) {
  ExprPtr e = ParseExpr("sqrt(0 - 1)");
  MapContext ctx;
  EXPECT_FALSE(EvaluateExpr(*e, ctx).ok());
}

TEST(ExprEvalTest, EvaluateBoolTruthiness) {
  MapContext ctx;
  ctx.Set("n", Value(int64_t{3}));
  ExprPtr e = ParseExpr("n");
  EXPECT_TRUE(EvaluateBool(*e, ctx).value());
  ctx.Set("n", Value(int64_t{0}));
  EXPECT_FALSE(EvaluateBool(*e, ctx).value());
}

}  // namespace
}  // namespace saql
