#include "engine/scheduler.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

std::unique_ptr<CompiledQuery> Compile(const std::string& text,
                                       const std::string& name) {
  Result<AnalyzedQueryPtr> aq = CompileSaql(text);
  EXPECT_TRUE(aq.ok()) << aq.status();
  Result<std::unique_ptr<CompiledQuery>> q =
      CompiledQuery::Create(aq.value(), name);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).value();
}

TEST(SchedulerTest, GroupsCompatibleQueries) {
  auto q1 = Compile("proc p[\"%a.exe\"] write ip i as e return p", "q1");
  auto q2 = Compile("proc p[\"%b.exe\"] write ip i as e return p", "q2");
  auto q3 = Compile("proc p read file f as e return p", "q3");
  ConcurrentQueryScheduler sched;
  sched.AddQuery(q1.get());
  sched.AddQuery(q2.get());
  sched.AddQuery(q3.get());
  sched.BuildGroups();
  EXPECT_EQ(sched.num_groups(), 2u);
}

TEST(SchedulerTest, GroupingDisabledIsOnePerQuery) {
  auto q1 = Compile("proc p[\"%a.exe\"] write ip i as e return p", "q1");
  auto q2 = Compile("proc p[\"%b.exe\"] write ip i as e return p", "q2");
  ConcurrentQueryScheduler sched(
      ConcurrentQueryScheduler::Options{/*enable_grouping=*/false});
  sched.AddQuery(q1.get());
  sched.AddQuery(q2.get());
  sched.BuildGroups();
  EXPECT_EQ(sched.num_groups(), 2u);
}

TEST(SchedulerTest, SignatureIncludesOpsAndObjectType) {
  auto read_q = Compile("proc p read file f as e return p", "r");
  auto write_q = Compile("proc p write file f as e return p", "w");
  auto net_q = Compile("proc p read ip i as e return p", "n");
  EXPECT_NE(read_q->GroupSignature(), write_q->GroupSignature());
  EXPECT_NE(read_q->GroupSignature(), net_q->GroupSignature());
}

TEST(SchedulerTest, SignatureIgnoresConstraintsAndReturns) {
  auto q1 = Compile(
      "proc p[\"%x.exe\"] write ip i[dstip=\"1.1.1.1\"] as e return p", "a");
  auto q2 = Compile("proc q write ip j as e return j", "b");
  EXPECT_EQ(q1->GroupSignature(), q2->GroupSignature());
}

TEST(QueryGroupTest, MasterFilterSavesMemberDeliveries) {
  auto q1 = Compile("proc p[\"%a.exe\"] write ip i as e return p", "q1");
  auto q2 = Compile("proc p[\"%b.exe\"] write ip i as e return p", "q2");
  QueryGroup group("sig");
  group.AddMember(q1.get());
  group.AddMember(q2.get());

  // A file event does not structurally match a net-write pattern: filtered
  // once for the whole group.
  Event file_event = EventBuilder()
                         .At(1)
                         .Subject("a.exe")
                         .Op(EventOp::kRead)
                         .FileObject("/x")
                         .Build();
  group.OnEvent(file_event);
  EXPECT_EQ(group.stats().events_in, 1u);
  EXPECT_EQ(group.stats().events_forwarded, 0u);
  EXPECT_EQ(group.stats().member_deliveries, 0u);

  Event net_event = EventBuilder()
                        .At(2)
                        .Subject("a.exe")
                        .Op(EventOp::kWrite)
                        .NetObject("1.1.1.1")
                        .Build();
  group.OnEvent(net_event);
  EXPECT_EQ(group.stats().events_forwarded, 1u);
  EXPECT_EQ(group.stats().member_deliveries, 2u);
  // Both members saw the event; only q1's constraints match.
  EXPECT_EQ(q1->stats().matches, 1u);
  EXPECT_EQ(q2->stats().matches, 0u);
}

TEST(QueryGroupTest, WatermarkAndFinishForwarded) {
  auto q = Compile(
      "proc p write ip i as e #time(1 min) "
      "state ss { c := count() } group by p "
      "alert ss.c > 0 return p, ss.c",
      "q");
  std::vector<Alert> alerts;
  q->SetAlertSink([&](const Alert& a) { alerts.push_back(a); });
  QueryGroup group("sig");
  group.AddMember(q.get());
  group.OnEvent(EventBuilder()
                    .At(kSecond)
                    .Subject("p.exe")
                    .Op(EventOp::kWrite)
                    .NetObject("1.1.1.1")
                    .Amount(5)
                    .Build());
  group.OnWatermark(2 * kMinute);  // closes the window
  group.OnFinish();
  EXPECT_EQ(alerts.size(), 1u);
}

TEST(SchedulerTest, ForwardRatioReflectsFiltering) {
  auto q = Compile("proc p write ip i as e return p", "q");
  ConcurrentQueryScheduler sched;
  sched.AddQuery(q.get());
  sched.BuildGroups();
  QueryGroup* g = sched.groups()[0];
  // 3 structurally irrelevant events, 1 relevant.
  for (int i = 0; i < 3; ++i) {
    g->OnEvent(EventBuilder()
                   .At(i)
                   .Subject("x.exe")
                   .Op(EventOp::kRead)
                   .FileObject("/f")
                   .Build());
  }
  g->OnEvent(EventBuilder()
                 .At(9)
                 .Subject("x.exe")
                 .Op(EventOp::kWrite)
                 .NetObject("2.2.2.2")
                 .Build());
  EXPECT_DOUBLE_EQ(sched.ForwardRatio(), 0.25);
}

}  // namespace
}  // namespace saql
