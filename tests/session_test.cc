// Session-based streaming API: the push-driven lifecycle must be
// observationally equivalent to the batch facade (Run is a thin wrapper
// over a session), and the dynamic query lifecycle — AddQuery mid-stream,
// RemoveQuery / QueryHandle::Cancel — must keep group membership,
// dispatch-index routing, and the shared ConstraintIndex consistent, in
// single-threaded and sharded mode alike.
//
//   - Differential over the checked-in corpus: interleaved
//     Push/AdvanceWatermark schedules at 1/2/4 shards produce the same
//     alert sequence and per-query stats as Run(source).
//   - Attach-point semantics: a query added mid-stream sees only events
//     pushed after its attach point.
//   - Removal: state torn down, final stats retained, survivors
//     unaffected; ConstraintIndex rebuild parity (index on == off) under
//     add/remove churn.
//   - Lifecycle contract: Run twice / AddQuery after a run / operations
//     on a closed session return FailedPrecondition; the interner
//     rotation policy fires between sessions.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collect/enterprise_sim.h"
#include "core/interner.h"
#include "engine/engine.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

// ---------------------------------------------------------------------
// Helpers.

std::vector<std::pair<std::string, std::string>> CorpusQueries() {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           SAQL_QUERY_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".saql") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& path : files) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    out.emplace_back(std::filesystem::path(path).stem().string(),
                     text.str());
  }
  return out;
}

const EventBatch& SimCorpus() {
  static const EventBatch* events = [] {
    EnterpriseSimulator::Options opts;
    opts.duration = 14 * kMinute;
    return new EventBatch(EnterpriseSimulator(opts).Generate());
  }();
  return *events;
}

std::vector<std::string> Render(const std::vector<Alert>& alerts) {
  std::vector<std::string> out;
  out.reserve(alerts.size());
  for (const Alert& a : alerts) out.push_back(a.ToString());
  return out;
}

struct RunResult {
  std::vector<std::string> alerts;
  std::vector<std::pair<std::string, CompiledQuery::QueryStats>> stats;
};

void ExpectStatsEq(const RunResult& a, const RunResult& b,
                   const std::string& label) {
  ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].first, b.stats[i].first) << label;
    const auto& x = a.stats[i].second;
    const auto& y = b.stats[i].second;
    EXPECT_EQ(x.events_in, y.events_in) << label << " " << a.stats[i].first;
    EXPECT_EQ(x.events_past_global, y.events_past_global)
        << label << " " << a.stats[i].first;
    EXPECT_EQ(x.matches, y.matches) << label << " " << a.stats[i].first;
    EXPECT_EQ(x.windows_closed, y.windows_closed)
        << label << " " << a.stats[i].first;
    EXPECT_EQ(x.alerts, y.alerts) << label << " " << a.stats[i].first;
    EXPECT_EQ(x.eval_errors, y.eval_errors)
        << label << " " << a.stats[i].first;
  }
}

SaqlEngine::Options EngineOptions(size_t shards, size_t batch_size) {
  SaqlEngine::Options opts;
  opts.num_shards = shards;
  opts.batch_size = batch_size;
  return opts;
}

RunResult RunBatch(
    const std::vector<std::pair<std::string, std::string>>& queries,
    const EventBatch& events, SaqlEngine::Options opts) {
  SaqlEngine engine(opts);
  for (const auto& [name, text] : queries) {
    Status st = engine.AddQuery(text, name);
    EXPECT_TRUE(st.ok()) << name << ": " << st;
  }
  EventBatch copy = events;
  VectorEventSource source(std::move(copy));
  Status st = engine.Run(&source);
  EXPECT_TRUE(st.ok()) << st;
  return RunResult{Render(engine.alerts()), engine.query_stats()};
}

/// Drives a session over `events` with pushes of `push_size` events and a
/// watermark advance every `watermark_every` pushes (always once more at
/// the end, before Close).
RunResult RunSession(
    const std::vector<std::pair<std::string, std::string>>& queries,
    const EventBatch& events, SaqlEngine::Options opts, size_t push_size,
    size_t watermark_every) {
  SaqlEngine engine(opts);
  for (const auto& [name, text] : queries) {
    Status st = engine.AddQuery(text, name);
    EXPECT_TRUE(st.ok()) << name << ": " << st;
  }
  auto session = engine.OpenSession();
  EXPECT_TRUE(session.ok()) << session.status();
  EventBatch copy = events;
  size_t pushes = 0;
  for (size_t pos = 0; pos < copy.size(); pos += push_size) {
    size_t n = std::min(push_size, copy.size() - pos);
    Status st = (*session)->Push(copy.data() + pos, n);
    EXPECT_TRUE(st.ok()) << st;
    if (++pushes % watermark_every == 0) {
      st = (*session)->AdvanceWatermark((*session)->max_event_ts());
      EXPECT_TRUE(st.ok()) << st;
    }
  }
  Status st = (*session)->AdvanceWatermark((*session)->max_event_ts());
  EXPECT_TRUE(st.ok()) << st;
  st = (*session)->Close();
  EXPECT_TRUE(st.ok()) << st;
  return RunResult{Render(engine.alerts()), engine.query_stats()};
}

Event NetWrite(const std::string& exe, const std::string& dst,
               int64_t amount, Timestamp ts, const std::string& host = "h1",
               int64_t pid = 100) {
  return EventBuilder()
      .At(ts)
      .OnHost(host)
      .Subject(exe, pid)
      .Op(EventOp::kWrite)
      .NetObject(dst)
      .Amount(amount)
      .Build();
}

// ---------------------------------------------------------------------
// Differential: session vs batch over the checked-in corpus.

class SessionCorpusDiff : public ::testing::TestWithParam<size_t> {};

TEST_P(SessionCorpusDiff, MatchesBatchRunAcrossSchedules) {
  const size_t shards = GetParam();
  auto queries = CorpusQueries();
  ASSERT_GE(queries.size(), 10u);
  const EventBatch& events = SimCorpus();

  if (shards == 1) {
    // Single-threaded alerts emit inline, so the sequence depends on
    // where watermarks land relative to events: compare schedules that
    // batch identically to Run.
    for (size_t batch : {257u, 1024u}) {
      RunResult ref = RunBatch(queries, events, EngineOptions(1, batch));
      RunResult got =
          RunSession(queries, events, EngineOptions(1, batch), batch, 1);
      EXPECT_EQ(got.alerts, ref.alerts) << "batch=" << batch;
      ExpectStatsEq(got, ref, "batch=" + std::to_string(batch));
    }
    // Per-query stats are schedule-independent even when the interleaving
    // of window-close vs stateless alerts is not.
    RunResult ref = RunBatch(queries, events, EngineOptions(1, 1024));
    RunResult sparse =
        RunSession(queries, events, EngineOptions(1, 1024), 333, 4);
    ExpectStatsEq(sparse, ref, "sparse-watermarks");
    return;
  }

  // Sharded alerts are released in deterministic (ts, query, group,
  // values) order, so the sequence is independent of the push split and
  // watermark cadence.
  RunResult ref = RunBatch(queries, events, EngineOptions(shards, 1024));
  for (auto [push, wm_every] :
       {std::pair<size_t, size_t>{1024, 1}, {513, 3}, {4096, 2}}) {
    RunResult got = RunSession(queries, events, EngineOptions(shards, 1024),
                               push, wm_every);
    EXPECT_EQ(got.alerts, ref.alerts)
        << "shards=" << shards << " push=" << push << "/" << wm_every;
    ExpectStatsEq(got, ref,
                  "shards=" + std::to_string(shards) +
                      " push=" + std::to_string(push));
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, SessionCorpusDiff,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// The forced 1-lane sharded pipeline (splitter + lane + merge + ordered
// sink) through the session path, against plain single-threaded Run:
// alert multiset identity (sharded emission is globally sorted).
TEST(SessionShardedTest, ForcedShardedSessionMatchesSingleThreadedMultiset) {
  auto queries = CorpusQueries();
  const EventBatch& events = SimCorpus();
  RunResult single = RunBatch(queries, events, EngineOptions(1, 1024));
  SaqlEngine::Options forced = EngineOptions(1, 1024);
  forced.force_sharded_executor = true;
  RunResult sharded = RunSession(queries, events, forced, 777, 2);
  std::vector<std::string> a = single.alerts;
  std::vector<std::string> b = sharded.alerts;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  ExpectStatsEq(sharded, single, "forced-sharded");
}

// ---------------------------------------------------------------------
// Dynamic add: attach-point semantics.

class SessionDynamicAdd : public ::testing::TestWithParam<size_t> {};

TEST_P(SessionDynamicAdd, AddedQuerySeesOnlyEventsAfterAttach) {
  const size_t shards = GetParam();
  EventBatch events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(NetWrite(i % 2 == 0 ? "evil.exe" : "ok.exe",
                              "6.6.6.6", 100, (i + 1) * kSecond, "h1",
                              100 + i % 7));
  }
  const std::string text =
      "proc p[\"%evil.exe\"] write ip i as e return p, i";

  SaqlEngine::Options opts;
  opts.num_shards = shards;
  opts.force_sharded_executor = shards == 1;
  SaqlEngine engine(opts);
  ASSERT_TRUE(engine.AddQuery(text, "before").ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();

  // First half, then attach, then second half.
  ASSERT_TRUE((*session)->Push(events.data(), 50).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  auto handle = (*session)->AddQuery(text, "after");
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_TRUE((*session)->Push(events.data() + 50, 50).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  ASSERT_TRUE((*session)->Close().ok());

  // 50 matching events in total, 25 in each half.
  auto stats = engine.query_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].first, "before");
  EXPECT_EQ(stats[0].second.alerts, 50u);
  EXPECT_EQ(stats[1].first, "after");
  EXPECT_EQ(stats[1].second.alerts, 25u);
  // The attach point bounds what the new query was ever shown: both
  // replicas saw exactly the second half (events_in counts routed-away
  // events too, so it equals the post-attach event count).
  EXPECT_EQ(stats[1].second.events_in, 50u);
  EXPECT_EQ((*handle)->stats().alerts, 25u);

  size_t before_alerts = 0, after_alerts = 0;
  for (const Alert& a : engine.alerts()) {
    if (a.query_name == "before") ++before_alerts;
    if (a.query_name == "after") {
      ++after_alerts;
      EXPECT_GT(a.ts, 50 * kSecond);  // only post-attach events
    }
  }
  EXPECT_EQ(before_alerts, 50u);
  EXPECT_EQ(after_alerts, 25u);
}

INSTANTIATE_TEST_SUITE_P(Shards, SessionDynamicAdd,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// A stateful (cross-shard merged) query added mid-stream: windows before
// the attach point never existed for it; windows after close normally.
TEST(SessionDynamicAddTest, StatefulQueryAttachesMidStreamSharded) {
  EventBatch events;
  for (int w = 0; w < 8; ++w) {
    for (int i = 0; i < 5; ++i) {
      events.push_back(NetWrite("app.exe", "1.1.1.1", 1000,
                                w * kMinute + (i + 1) * kSecond, "h1",
                                100 + i));
    }
  }
  events.push_back(NetWrite("idle.exe", "9.9.9.9", 1, 9 * kMinute));
  const std::string text =
      "proc p write ip i as e #time(1 min) "
      "state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 0 return p, ss.amt";

  SaqlEngine::Options opts;
  opts.num_shards = 2;
  SaqlEngine engine(opts);
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();

  size_t half = 20;  // first 4 windows' worth of app.exe events
  ASSERT_TRUE((*session)->Push(events.data(), half).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  auto handle = (*session)->AddQuery(text, "sum");
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_TRUE(
      (*session)->Push(events.data() + half, events.size() - half).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  ASSERT_TRUE((*session)->Close().ok());

  // Windows 4..7 hold app.exe events after the attach point.
  std::vector<const Alert*> app;
  for (const Alert& a : engine.alerts()) {
    if (a.group == "app.exe") app.push_back(&a);
  }
  ASSERT_EQ(app.size(), 4u);
  for (const Alert* a : app) {
    ASSERT_TRUE(a->window.has_value());
    EXPECT_GE(a->window->start, 4 * kMinute);
    EXPECT_EQ(a->values[1].second.AsInt(), 5000);
  }
}

// A global-lane query (multi-event join) added mid-stream spins the
// global lane up on the spot and only joins post-attach events.
TEST(SessionDynamicAddTest, GlobalLaneQueryAttachesMidStreamSharded) {
  auto seq = [](Timestamp base, const std::string& host) {
    EventBatch out;
    out.push_back(EventBuilder()
                      .At(base)
                      .OnHost(host)
                      .Subject("cmd.exe", 50)
                      .Op(EventOp::kStart)
                      .ProcObject("osql.exe", 60)
                      .Build());
    out.push_back(EventBuilder()
                      .At(base + kSecond)
                      .OnHost(host)
                      .Subject("sqlservr.exe", 70)
                      .Op(EventOp::kWrite)
                      .FileObject("/backup1.dmp")
                      .Amount(5000000)
                      .Build());
    return out;
  };
  const std::string join =
      "proc a[\"%cmd.exe\"] start proc b[\"%osql.exe\"] as e1 "
      "proc c[\"%sqlservr.exe\"] write file f as e2 "
      "with e1 -> e2 return a, b, f";

  SaqlEngine::Options opts;
  opts.num_shards = 2;
  SaqlEngine engine(opts);
  // Open with a partitionable query only — no global lane yet.
  ASSERT_TRUE(engine
                  .AddQuery("proc p write ip i as e return p", "net")
                  .ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();

  EventBatch first = seq(10 * kSecond, "h1");
  ASSERT_TRUE((*session)->Push(first).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());

  auto handle = (*session)->AddQuery(join, "join");
  ASSERT_TRUE(handle.ok()) << handle.status();

  EventBatch second = seq(60 * kSecond, "h2");
  ASSERT_TRUE((*session)->Push(second).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  ASSERT_TRUE((*session)->Close().ok());

  // Only the post-attach sequence (h2) completes the join.
  size_t join_alerts = 0;
  for (const Alert& a : engine.alerts()) {
    if (a.query_name == "join") {
      ++join_alerts;
      EXPECT_EQ(a.ts, 61 * kSecond);
    }
  }
  EXPECT_EQ(join_alerts, 1u);
  EXPECT_EQ((*handle)->stats().matches, 1u);
}

// ---------------------------------------------------------------------
// Dynamic remove.

class SessionDynamicRemove : public ::testing::TestWithParam<size_t> {};

TEST_P(SessionDynamicRemove, RemovalFreezesStatsAndSparesSurvivors) {
  const size_t shards = GetParam();
  EventBatch events;
  for (int i = 0; i < 120; ++i) {
    events.push_back(NetWrite(i % 3 == 0 ? "a.exe" : "b.exe", "1.1.1.1",
                              100, (i + 1) * kSecond, "h1", 100 + i % 5));
  }

  SaqlEngine::Options opts;
  opts.num_shards = shards;
  opts.force_sharded_executor = shards == 1;
  SaqlEngine engine(opts);
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%a.exe\"] write ip i as e return p", "qa")
          .ok());
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%b.exe\"] write ip i as e return p", "qb")
          .ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();

  ASSERT_TRUE((*session)->Push(events.data(), 60).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  ASSERT_TRUE((*session)->Flush().ok());

  SaqlEngine::QueryHandle* qa = (*session)->handle("qa");
  ASSERT_NE(qa, nullptr);
  EXPECT_TRUE(qa->active());
  ASSERT_TRUE((*session)->RemoveQuery("qa").ok());
  EXPECT_FALSE(qa->active());
  CompiledQuery::QueryStats frozen = qa->stats();
  EXPECT_EQ(frozen.alerts, 20u);  // i % 3 == 0 in the first half

  // Removing again (by name or handle) reports the lifecycle error.
  EXPECT_EQ((*session)->RemoveQuery("qa").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(qa->Cancel().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->RemoveQuery("nope").code(), StatusCode::kNotFound);

  ASSERT_TRUE((*session)->Push(events.data() + 60, 60).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  ASSERT_TRUE((*session)->Close().ok());

  // Frozen stats did not move; the survivor saw everything.
  EXPECT_EQ(qa->stats().alerts, frozen.alerts);
  EXPECT_EQ(qa->stats().events_in, frozen.events_in);
  auto stats = engine.query_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].first, "qa");
  EXPECT_EQ(stats[0].second.alerts, 20u);
  EXPECT_EQ(stats[1].first, "qb");
  EXPECT_EQ(stats[1].second.alerts, 80u);
  size_t qa_alerts = 0;
  for (const Alert& a : engine.alerts()) {
    if (a.query_name == "qa") {
      ++qa_alerts;
      EXPECT_LE(a.ts, 60 * kSecond);
    }
  }
  EXPECT_EQ(qa_alerts, 20u);
}

INSTANTIATE_TEST_SUITE_P(Shards, SessionDynamicRemove,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// Removing a stateful query drops its pending (unmerged) windows instead
// of flushing them.
TEST(SessionDynamicRemoveTest, StatefulRemovalDropsOpenWindowsSharded) {
  SaqlEngine::Options opts;
  opts.num_shards = 2;
  SaqlEngine engine(opts);
  ASSERT_TRUE(engine
                  .AddQuery("proc p write ip i as e #time(1 min) "
                            "state ss { amt := sum(e.amount) } group by p "
                            "alert ss.amt > 0 return p, ss.amt",
                            "sum")
                  .ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();

  EventBatch events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(
        NetWrite("app.exe", "1.1.1.1", 100, 10 * kSecond + i, "h1", 100));
  }
  ASSERT_TRUE((*session)->Push(events).ok());
  // No watermark past the window end: the window is still open when the
  // query is removed, so it must never fire.
  ASSERT_TRUE((*session)->RemoveQuery("sum").ok());
  ASSERT_TRUE((*session)->AdvanceWatermark(10 * kMinute).ok());
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_TRUE(engine.alerts().empty());
  auto stats = engine.query_stats();
  ASSERT_EQ(stats.size(), 1u);
  // Each event reached exactly one lane's replica.
  EXPECT_EQ(stats[0].second.events_in, 10u);
  EXPECT_EQ(stats[0].second.alerts, 0u);
}

// ---------------------------------------------------------------------
// ConstraintIndex rebuild parity under churn.

class SessionIndexChurn : public ::testing::TestWithParam<size_t> {};

TEST_P(SessionIndexChurn, IndexedChurnMatchesBruteForce) {
  const size_t shards = GetParam();
  // One structural shape, exact-equality tenants: an indexed group.
  auto tenant_query = [](int t) {
    return "proc p[exe_name = \"tenant" + std::to_string(t) +
           ".exe\"] write ip i as e return p, i";
  };
  EventBatch events;
  for (int i = 0; i < 240; ++i) {
    events.push_back(NetWrite("tenant" + std::to_string(i % 8) + ".exe",
                              "1.1.1.1", 100, (i + 1) * kSecond, "h1",
                              100 + i % 5));
  }

  auto churn = [&](bool member_index) {
    SaqlEngine::Options opts;
    opts.num_shards = shards;
    opts.force_sharded_executor = shards == 1;
    opts.enable_member_index = member_index;
    SaqlEngine engine(opts);
    for (int t = 0; t < 4; ++t) {
      EXPECT_TRUE(
          engine.AddQuery(tenant_query(t), "t" + std::to_string(t)).ok());
    }
    auto session = engine.OpenSession();
    EXPECT_TRUE(session.ok()) << session.status();
    EventBatch copy = events;
    // Phase 1: 4 tenants.
    EXPECT_TRUE((*session)->Push(copy.data(), 80).ok());
    EXPECT_TRUE(
        (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
    // Phase 2: two more tenants join (index rebuilt over 6 members).
    for (int t = 4; t < 6; ++t) {
      auto h = (*session)->AddQuery(tenant_query(t), "t" + std::to_string(t));
      EXPECT_TRUE(h.ok()) << h.status();
    }
    EXPECT_TRUE((*session)->Push(copy.data() + 80, 80).ok());
    EXPECT_TRUE(
        (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
    // Phase 3: one tenant leaves (index rebuilt over 5).
    EXPECT_TRUE((*session)->RemoveQuery("t1").ok());
    EXPECT_TRUE((*session)->Push(copy.data() + 160, 80).ok());
    EXPECT_TRUE(
        (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
    EXPECT_TRUE((*session)->Close().ok());
    return RunResult{Render(engine.alerts()), engine.query_stats()};
  };

  RunResult indexed = churn(true);
  RunResult brute = churn(false);
  EXPECT_EQ(indexed.alerts, brute.alerts);
  ExpectStatsEq(indexed, brute, "index-churn shards=" +
                                    std::to_string(shards));
  // Sanity: the workload produced something in every phase.
  EXPECT_GT(indexed.alerts.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Shards, SessionIndexChurn,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// The indexed-group count reflects dynamic membership (index appears when
// the group crosses min_index_members, disappears when it shrinks).
TEST(SessionIndexChurnTest, IndexedGroupCountTracksMembership) {
  SaqlEngine engine;
  for (int t = 0; t < 2; ++t) {
    ASSERT_TRUE(engine
                    .AddQuery("proc p[exe_name = \"t" + std::to_string(t) +
                                  ".exe\"] write ip i as e return p",
                              "t" + std::to_string(t))
                    .ok());
  }
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_EQ((*session)->num_groups(), 1u);
  EXPECT_EQ((*session)->num_indexed_groups(), 0u);  // below the threshold

  auto h = (*session)->AddQuery(
      "proc p[exe_name = \"t2.exe\"] write ip i as e return p", "t2");
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ((*session)->num_groups(), 1u);
  EXPECT_EQ((*session)->num_indexed_groups(), 1u);  // 3 members: indexed

  ASSERT_TRUE((*session)->RemoveQuery("t0").ok());
  EXPECT_EQ((*session)->num_indexed_groups(), 0u);  // back to brute force
  ASSERT_TRUE((*session)->RemoveQuery("t1").ok());
  ASSERT_TRUE((*session)->RemoveQuery("t2").ok());
  EXPECT_EQ((*session)->num_groups(), 0u);
  EXPECT_EQ((*session)->num_active_queries(), 0u);
  ASSERT_TRUE((*session)->Close().ok());
}

// ---------------------------------------------------------------------
// Per-handle alert sinks.

class SessionHandleSink : public ::testing::TestWithParam<size_t> {};

TEST_P(SessionHandleSink, TapReceivesOnlyItsQuery) {
  const size_t shards = GetParam();
  SaqlEngine::Options opts;
  opts.num_shards = shards;
  opts.force_sharded_executor = shards == 1;
  SaqlEngine engine(opts);
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%a.exe\"] write ip i as e return p", "qa")
          .ok());
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%b.exe\"] write ip i as e return p", "qb")
          .ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();

  std::vector<std::string> tapped;
  (*session)->handle("qa")->SetAlertSink(
      [&tapped](const Alert& a) { tapped.push_back(a.ToString()); });

  EventBatch events;
  for (int i = 0; i < 40; ++i) {
    events.push_back(NetWrite(i % 2 == 0 ? "a.exe" : "b.exe", "1.1.1.1",
                              100, (i + 1) * kSecond, "h1", 100 + i % 3));
  }
  ASSERT_TRUE((*session)->Push(events).ok());
  ASSERT_TRUE(
      (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  ASSERT_TRUE((*session)->Close().ok());

  // The tap saw exactly the global sink's qa alerts, in the same order.
  std::vector<std::string> expected;
  for (const Alert& a : engine.alerts()) {
    if (a.query_name == "qa") expected.push_back(a.ToString());
  }
  EXPECT_EQ(tapped, expected);
  EXPECT_EQ(tapped.size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Shards, SessionHandleSink,
                         ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Lifecycle contract (the documented FailedPrecondition surface).

TEST(EngineLifecycleTest, RunTwiceIsFailedPrecondition) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p read file f as e return p", "q").ok());
  VectorEventSource source(EventBatch{});
  ASSERT_TRUE(engine.Run(&source).ok());
  VectorEventSource source2(EventBatch{});
  Status st = engine.Run(&source2);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineLifecycleTest, AddQueryAfterRunIsFailedPrecondition) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p read file f as e return p", "q").ok());
  VectorEventSource source(EventBatch{});
  ASSERT_TRUE(engine.Run(&source).ok());
  Status st = engine.AddQuery("proc p write ip i as e return p", "late");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineLifecycleTest, EngineAddQueryWhileSessionOpenIsRejected) {
  SaqlEngine engine;
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();
  Status st = engine.AddQuery("proc p write ip i as e return p", "q");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The session-level AddQuery is the supported path.
  auto h = (*session)->AddQuery("proc p write ip i as e return p", "q");
  EXPECT_TRUE(h.ok()) << h.status();
  ASSERT_TRUE((*session)->Close().ok());
}

TEST(EngineLifecycleTest, RunAfterSessionsIsFailedPrecondition) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p read file f as e return p", "q").ok());
  {
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE((*session)->Close().ok());
  }
  VectorEventSource source(EventBatch{});
  EXPECT_EQ(engine.Run(&source).code(), StatusCode::kFailedPrecondition);
}

TEST(SessionLifecycleTest, OperationsOnClosedSessionFail) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p write ip i as e return p", "q").ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE((*session)->Close().ok());

  Event e = NetWrite("a.exe", "1.1.1.1", 1, kSecond);
  EXPECT_EQ((*session)->Push(&e, 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->AdvanceWatermark(kSecond).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->Close().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->AddQuery("proc p write ip i as e return p", "r")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->RemoveQuery("q").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE((*session)->handle("q")->active());
}

TEST(SessionLifecycleTest, ConcurrentOpensAndSequentialReopen) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%a.exe\"] write ip i as e return p", "q")
          .ok());
  auto s1 = engine.OpenSession();
  ASSERT_TRUE(s1.ok()) << s1.status();
  EXPECT_EQ(engine.session_count(), 1u);

  // Sessions are concurrent tenants: a second open succeeds, gets its own
  // id and fresh stream state, and its events do not feed session 1.
  auto s2 = engine.OpenSession();
  ASSERT_TRUE(s2.ok()) << s2.status();
  EXPECT_EQ(engine.session_count(), 2u);
  EXPECT_NE((*s1)->id(), (*s2)->id());

  EventBatch events;
  events.push_back(NetWrite("a.exe", "1.1.1.1", 1, kSecond));
  ASSERT_TRUE((*s1)->Push(events).ok());
  ASSERT_TRUE((*s1)->Close().ok());
  EXPECT_EQ(engine.session_count(), 1u);
  EXPECT_EQ(engine.alerts().size(), 1u);

  // Session 2 never saw session 1's events.
  ASSERT_TRUE((*s2)->Close().ok());
  EXPECT_EQ(engine.session_count(), 0u);
  EXPECT_EQ(engine.alerts().size(), 1u);

  // Reopening starts fresh stream state over the same registered set.
  auto s3 = engine.OpenSession();
  ASSERT_TRUE(s3.ok()) << s3.status();
  EventBatch again;
  again.push_back(NetWrite("a.exe", "1.1.1.1", 1, kSecond));
  ASSERT_TRUE((*s3)->Push(again).ok());
  ASSERT_TRUE((*s3)->Close().ok());
  EXPECT_EQ(engine.alerts().size(), 2u);
  // A query registered on the engine persists across sessions (none
  // removed here); per-session stats reset.
  auto stats = engine.query_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].second.alerts, 1u);
}

TEST(SessionLifecycleTest, DuplicateSessionQueryNameRejected) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p write ip i as e return p", "q").ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();
  auto dup = (*session)->AddQuery("proc p write ip i as e return p", "q");
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // A removed query's name stays reserved for the session's lifetime.
  ASSERT_TRUE((*session)->RemoveQuery("q").ok());
  auto again = (*session)->AddQuery("proc p write ip i as e return p", "q");
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE((*session)->Close().ok());
}

TEST(SessionLifecycleTest, DestructorClosesOpenSession) {
  SaqlEngine engine;
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%a.exe\"] write ip i as e return p", "q")
          .ok());
  {
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    EventBatch events;
    events.push_back(NetWrite("a.exe", "1.1.1.1", 1, kSecond));
    ASSERT_TRUE((*session)->Push(events).ok());
    // No Close: the destructor must finish the stream and publish stats.
  }
  EXPECT_EQ(engine.alerts().size(), 1u);
  auto stats = engine.query_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].second.alerts, 1u);
  // And the engine accepts a new session afterwards.
  auto s2 = engine.OpenSession();
  EXPECT_TRUE(s2.ok()) << s2.status();
}

// ---------------------------------------------------------------------
// Interner rotation between sessions.

TEST(SessionInternerTest, RotationPolicyFiresBetweenSessions) {
  Interner& interner = Interner::Global();
  SaqlEngine::Options opts;
  opts.interner_rotate_bytes = 1;  // any payload triggers rotation
  SaqlEngine engine(opts);
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%a.exe\"] write ip i as e return p", "q")
          .ok());

  auto run_once = [&engine] {
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    EventBatch events;
    events.push_back(NetWrite("a.exe", "1.1.1.1", 1, kSecond));
    events.push_back(NetWrite("b.exe", "1.1.1.1", 1, 2 * kSecond));
    ASSERT_TRUE((*session)->Push(events).ok());
    ASSERT_TRUE((*session)->Close().ok());
  };

  run_once();
  uint64_t gen_after_first = interner.generation();
  size_t alerts_after_first = engine.alerts().size();
  EXPECT_EQ(alerts_after_first, 1u);

  // The first session interned event strings, so the policy must rotate
  // on reopen — and the recompiled query must keep matching (fresh ids).
  run_once();
  EXPECT_GT(interner.generation(), gen_after_first);
  EXPECT_EQ(engine.alerts().size(), alerts_after_first + 1);
}

TEST(SessionInternerTest, NoRotationWhenDisabled) {
  SaqlEngine engine;  // interner_rotate_bytes = 0
  ASSERT_TRUE(
      engine.AddQuery("proc p[\"%a.exe\"] write ip i as e return p", "q")
          .ok());
  uint64_t gen = Interner::Global().generation();
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_EQ(Interner::Global().generation(), gen);
}

}  // namespace
}  // namespace saql
