#include "engine/eval_contexts.h"

#include <gtest/gtest.h>

#include "parser/analyzer.h"
#include "parser/parser.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

AnalyzedQueryPtr StatefulQuery() {
  return CompileSaql(
             "proc p write ip i as e #time(1 min) "
             "state[3] ss { amt := sum(e.amount) } group by p "
             "cluster(points=all(ss.amt), distance=\"ed\", "
             "method=\"DBSCAN(10, 2)\") "
             "alert cluster.outlier return p, ss.amt")
      .value();
}

ExprPtr Ref(const std::string& base, std::optional<int> history,
            const std::string& field) {
  return Expr::MakeRef(base, history, field, SourceLoc{});
}

TEST(WindowEvalContextTest, StateHistoryResolution) {
  AnalyzedQueryPtr aq = StatefulQuery();
  std::deque<WindowState> history;
  for (int i = 0; i < 3; ++i) {
    WindowState ws;
    ws.fields.push_back(Value(static_cast<int64_t>((i + 1) * 100)));
    history.push_back(std::move(ws));  // front = newest
  }
  WindowEvalContext ctx(*aq, &history, nullptr, nullptr, nullptr);
  EXPECT_EQ(EvaluateExpr(*Ref("ss", 0, "amt"), ctx).value().AsInt(), 100);
  EXPECT_EQ(EvaluateExpr(*Ref("ss", 1, "amt"), ctx).value().AsInt(), 200);
  EXPECT_EQ(EvaluateExpr(*Ref("ss", 2, "amt"), ctx).value().AsInt(), 300);
  // No index behaves as ss[0].
  EXPECT_EQ(EvaluateExpr(*Ref("ss", std::nullopt, "amt"), ctx)
                .value().AsInt(),
            100);
}

TEST(WindowEvalContextTest, MissingHistoryIsNull) {
  AnalyzedQueryPtr aq = StatefulQuery();
  std::deque<WindowState> history;
  WindowState ws;
  ws.fields.push_back(Value(int64_t{5}));
  history.push_back(std::move(ws));
  WindowEvalContext ctx(*aq, &history, nullptr, nullptr, nullptr);
  EXPECT_TRUE(EvaluateExpr(*Ref("ss", 2, "amt"), ctx).value().is_null());
}

TEST(WindowEvalContextTest, ClusterOutcomeResolution) {
  AnalyzedQueryPtr aq = StatefulQuery();
  ClusterOutcome outcome;
  outcome.valid = true;
  outcome.outlier = true;
  outcome.cluster_id = 2;
  outcome.cluster_size = 7;
  WindowEvalContext ctx(*aq, nullptr, nullptr, nullptr, &outcome);
  EXPECT_TRUE(EvaluateExpr(*Ref("cluster", std::nullopt, "outlier"), ctx)
                  .value().AsBool());
  EXPECT_EQ(EvaluateExpr(*Ref("cluster", std::nullopt, "cluster_id"), ctx)
                .value().AsInt(),
            2);
  EXPECT_EQ(EvaluateExpr(*Ref("cluster", std::nullopt, "cluster_size"), ctx)
                .value().AsInt(),
            7);
}

TEST(WindowEvalContextTest, InvalidClusterOutcomeIsNull) {
  AnalyzedQueryPtr aq = StatefulQuery();
  ClusterOutcome outcome;  // valid = false (excluded group)
  WindowEvalContext ctx(*aq, nullptr, nullptr, nullptr, &outcome);
  EXPECT_TRUE(EvaluateExpr(*Ref("cluster", std::nullopt, "outlier"), ctx)
                  .value().is_null());
}

TEST(WindowEvalContextTest, GroupKeyResolution) {
  AnalyzedQueryPtr aq = StatefulQuery();
  std::vector<Value> keys{Value("sqlservr.exe")};
  WindowEvalContext ctx(*aq, nullptr, &keys, nullptr, nullptr);
  // `p` resolves to the group key's value; explicit field must match.
  EXPECT_EQ(EvaluateExpr(*Ref("p", std::nullopt, ""), ctx)
                .value().AsString(),
            "sqlservr.exe");
  EXPECT_EQ(EvaluateExpr(*Ref("p", std::nullopt, "exe_name"), ctx)
                .value().AsString(),
            "sqlservr.exe");
  // A different field of the same base is not the group key.
  EXPECT_TRUE(EvaluateExpr(*Ref("p", std::nullopt, "pid"), ctx)
                  .value().is_null());
}

TEST(WindowEvalContextTest, InvariantVarResolution) {
  AnalyzedQueryPtr aq =
      CompileSaql(
          "proc p start proc c as e #time(10 s) "
          "state ss { s := set(c.exe_name) } group by p "
          "invariant[2] { a := empty_set a = a union ss.s } "
          "alert |ss.s diff a| > 0 return p")
          .value();
  std::vector<Value> env{Value(StringSet{"php.exe"})};
  WindowEvalContext ctx(*aq, nullptr, nullptr, &env, nullptr);
  EXPECT_EQ(EvaluateExpr(*Ref("a", std::nullopt, ""), ctx).value().AsSet(),
            (StringSet{"php.exe"}));
}

TEST(MatchEvalContextTest, EntityAndAliasResolution) {
  AnalyzedQueryPtr aq =
      CompileSaql(
          "proc p write file f as e alert e.amount > 0 return p, f, "
          "e.agentid")
          .value();
  PatternMatch match;
  match.events.push_back(EventBuilder()
                             .At(5)
                             .OnHost("db-1")
                             .Subject("osql.exe", 42)
                             .Op(EventOp::kWrite)
                             .FileObject("/dump.bin")
                             .Amount(100)
                             .Build());
  MatchEvalContext ctx(*aq, match);
  EXPECT_EQ(EvaluateExpr(*Ref("p", std::nullopt, ""), ctx)
                .value().AsString(),
            "osql.exe");  // default field
  EXPECT_EQ(EvaluateExpr(*Ref("p", std::nullopt, "pid"), ctx)
                .value().AsInt(),
            42);
  EXPECT_EQ(EvaluateExpr(*Ref("f", std::nullopt, ""), ctx)
                .value().AsString(),
            "/dump.bin");
  EXPECT_EQ(EvaluateExpr(*Ref("e", std::nullopt, "agentid"), ctx)
                .value().AsString(),
            "db-1");
  EXPECT_EQ(EvaluateExpr(*Ref("e", std::nullopt, "amount"), ctx)
                .value().AsInt(),
            100);
  // Unknown names resolve to null rather than erroring the stream.
  EXPECT_TRUE(EvaluateExpr(*Ref("zz", std::nullopt, ""), ctx)
                  .value().is_null());
}

TEST(AggFinishContextTest, ResolvesBySiteIdentity) {
  ExprPtr call = Expr::MakeCall("sum", {}, SourceLoc{});
  std::unordered_map<const Expr*, Value> values;
  values.emplace(call.get(), Value(int64_t{42}));
  AggFinishContext ctx(&values);
  EXPECT_EQ(EvaluateExpr(*call, ctx).value().AsInt(), 42);
  // A different call node (even if identical text) is a missing site.
  ExprPtr other = Expr::MakeCall("sum", {}, SourceLoc{});
  Result<Value> r = EvaluateExpr(*other, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(CollectAggregateSitesTest, FindsAllSitesInOrder) {
  Result<Query> q = ParseSaql(
      "proc p write ip i as e #time(1 min) "
      "state ss { x := avg(e.amount) / max(e.amount) + 1 } group by p "
      "return ss.x");
  ASSERT_TRUE(q.ok());
  std::vector<const Expr*> sites;
  CollectAggregateSites(*q->state->fields[0].expr, &sites);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0]->callee, "avg");
  EXPECT_EQ(sites[1]->callee, "max");
}

}  // namespace
}  // namespace saql
