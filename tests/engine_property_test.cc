// System-level properties that must hold regardless of configuration:
// batch size cannot change results, scheduler grouping cannot change
// results, window overlap multiplies aggregate mass exactly, and stateful
// queries compose with multi-pattern sequences.

#include <map>

#include <gtest/gtest.h>

#include "collect/enterprise_sim.h"
#include "engine/engine.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

EventBatch SimStream() {
  static const EventBatch* events = [] {
    EnterpriseSimulator::Options opts;
    opts.num_workstations = 2;
    opts.duration = 16 * kMinute;
    opts.events_per_host_per_second = 5;
    opts.attack_offset = 6 * kMinute;
    EnterpriseSimulator sim(opts);
    return new EventBatch(sim.Generate());
  }();
  return *events;
}

/// Renders alerts into a canonical multiset for comparisons.
std::multiset<std::string> AlertFingerprints(const std::vector<Alert>& alerts) {
  std::multiset<std::string> out;
  for (const Alert& a : alerts) {
    std::string fp = a.query_name + "|" + std::to_string(a.ts) + "|" +
                     a.group;
    for (const auto& [label, value] : a.values) {
      fp += "|" + label + "=" + value.ToString();
    }
    out.insert(fp);
  }
  return out;
}

std::vector<Alert> RunWith(size_t batch_size, bool grouping) {
  SaqlEngine::Options opts;
  opts.batch_size = batch_size;
  opts.enable_grouping = grouping;
  SaqlEngine engine(opts);
  const char* const queries[] = {
      "proc p[\"%sbblv.exe\"] write ip i as e return distinct p, i",
      "proc p write ip i as e #time(2 min) "
      "state ss { amt := sum(e.amount) } group by p "
      "alert ss.amt > 2000000 return p, ss.amt",
      "proc p1[\"%excel.exe\"] start proc p2 as e #time(30 s) "
      "state ss { s := set(p2.exe_name) } group by p1 "
      "invariant[5][offline] { a := empty_set a = a union ss.s } "
      "alert |ss.s diff a| > 0 return p1, ss.s",
  };
  int i = 0;
  for (const char* q : queries) {
    Status st = engine.AddQuery(q, "q" + std::to_string(i++));
    EXPECT_TRUE(st.ok()) << st;
  }
  VectorEventSource source(SimStream());
  Status st = engine.Run(&source);
  EXPECT_TRUE(st.ok()) << st;
  return engine.alerts();
}

class BatchSizeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchSizeProperty, BatchSizeDoesNotChangeAlerts) {
  static const std::multiset<std::string>* reference =
      new std::multiset<std::string>(
          AlertFingerprints(RunWith(1024, true)));
  std::multiset<std::string> got =
      AlertFingerprints(RunWith(GetParam(), true));
  EXPECT_EQ(got, *reference) << "batch size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeProperty,
                         ::testing::Values(1, 17, 256, 100000));

TEST(EngineProperty, GroupingDoesNotChangeAlerts) {
  EXPECT_EQ(AlertFingerprints(RunWith(1024, true)),
            AlertFingerprints(RunWith(1024, false)));
}

TEST(EngineProperty, WindowOverlapMultipliesAggregateMass) {
  // Sum of per-window counts over the whole run equals events x overlap
  // (every event lands in `overlap` windows), up to stream-edge windows
  // which Finish() also flushes.
  EventBatch events;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    events.push_back(EventBuilder()
                         .At(i * kSecond)
                         .OnHost("h")
                         .Subject("p.exe", 1)
                         .Op(EventOp::kWrite)
                         .NetObject("1.1.1.1")
                         .Amount(1)
                         .Build());
  }
  for (int overlap : {1, 2, 5}) {
    SaqlEngine engine;
    std::string q =
        "proc p write ip i as e #time(10 s, " +
        std::to_string(10 / overlap) +
        " s) state ss { c := count() } group by p "
        "alert ss.c > 0 return p, ss.c";
    ASSERT_TRUE(engine.AddQuery(q, "q").ok());
    VectorEventSource source(events);
    ASSERT_TRUE(engine.Run(&source).ok());
    int64_t total = 0;
    for (const Alert& a : engine.alerts()) {
      total += a.values[1].second.AsInt();
    }
    EXPECT_EQ(total, static_cast<int64_t>(n) * overlap)
        << "overlap " << overlap;
  }
}

TEST(EngineProperty, MultiPatternSequenceFeedsStatefulWindow) {
  // A stateful query over a two-step sequence: count completed
  // write->read handoffs of the same file per writer, per minute.
  EventBatch events;
  Timestamp ts = 0;
  for (int i = 0; i < 6; ++i) {
    ts += 5 * kSecond;
    events.push_back(EventBuilder()
                         .At(ts)
                         .OnHost("h")
                         .Subject("writer.exe", 1)
                         .Op(EventOp::kWrite)
                         .FileObject("/spool/item" + std::to_string(i))
                         .Amount(10)
                         .Build());
    ts += kSecond;
    events.push_back(EventBuilder()
                         .At(ts)
                         .OnHost("h")
                         .Subject("reader.exe", 2)
                         .Op(EventOp::kRead)
                         .FileObject("/spool/item" + std::to_string(i))
                         .Amount(10)
                         .Build());
  }
  SaqlEngine engine;
  ASSERT_TRUE(engine
                  .AddQuery(
                      "proc w[\"%writer.exe\"] write file f as e1 "
                      "proc r[\"%reader.exe\"] read file f as e2 "
                      "with e1 ->[2 s] e2 #time(1 min) "
                      "state ss { handoffs := count() } group by w "
                      "alert ss.handoffs >= 6 "
                      "return w, ss.handoffs",
                      "handoffs")
                  .ok());
  VectorEventSource source(events);
  ASSERT_TRUE(engine.Run(&source).ok());
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].values[1].second.AsInt(), 6);
  EXPECT_EQ(engine.alerts()[0].group, "writer.exe");
}

TEST(EngineProperty, SimulatorDeterminismEndToEnd) {
  // Same seed, same queries, same alerts — the whole pipeline is
  // deterministic (required for reproducible experiments).
  EXPECT_EQ(AlertFingerprints(RunWith(1024, true)),
            AlertFingerprints(RunWith(1024, true)));
}

}  // namespace
}  // namespace saql
