// The durability contract, end to end: a DurableLogWriter run that is
// killed at any point — torn mid-WAL-record, between WAL and segment,
// mid-segment, during WAL deletion or rotation — recovers to a clean
// prefix of the appended stream, with the loss bound set by the sync
// policy:
//
//   always  — no acked event is ever lost (recovered >= acked);
//   group   — loss bounded to the open commit window
//             (durable_seq <= recovered <= acked);
//   none    — durability only at segment/close barriers.
//
// The differential half of the matrix replays each recovered stream
// through the engine at 1/2/4 shards and requires the alert sequence to
// be identical to an uncrashed run over the same prefix — recovery must
// be invisible to queries.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "storage/columnar_log.h"
#include "storage/durable_log.h"
#include "storage/file_backend.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::EventBuilder;

// ---------------------------------------------------------------------
// Fixtures.

/// A fresh directory per test: recovery scans the log's directory for
/// WAL files, so tests must not share one.
std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> WalFilesNextTo(const std::string& path) {
  std::filesystem::path base(path);
  std::string prefix = base.filename().string() + ".wal.";
  std::vector<std::string> out;
  for (const auto& e :
       std::filesystem::directory_iterator(base.parent_path())) {
    if (e.path().filename().string().rfind(prefix, 0) == 0) {
      out.push_back(e.path().string());
    }
  }
  return out;
}

/// Deterministic alert-bearing corpus: every event is a network write
/// (one per second), a sprinkle of "%evil.exe" subjects for the
/// stateless query, varied hosts/amounts for the per-minute aggregation.
EventBatch Corpus(size_t n) {
  EventBatch out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const bool evil = i % 17 == 0;
    out.push_back(
        EventBuilder()
            .Id(i + 1)
            .At(static_cast<Timestamp>(i) * kSecond)
            .OnHost("h" + std::to_string(i % 3))
            .Subject(
                evil ? "evil.exe" : "app" + std::to_string(i % 4) + ".exe",
                100 + static_cast<int>(i % 50))
            .Op(EventOp::kWrite)
            .NetObject("10.0.0." + std::to_string(i % 5), 443)
            .Amount(static_cast<int64_t>((i % 100) * 1000))
            .Build());
  }
  return out;
}

/// `got` must be `corpus[0..got.size())`, field for field.
void ExpectIsCorpusPrefix(const EventBatch& got, const EventBatch& corpus,
                          const std::string& label) {
  ASSERT_LE(got.size(), corpus.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    const Event& a = corpus[i];
    const Event& b = got[i];
    ASSERT_EQ(a.id, b.id) << label << " @" << i;
    ASSERT_EQ(a.ts, b.ts) << label << " @" << i;
    ASSERT_EQ(a.agent_id, b.agent_id) << label << " @" << i;
    ASSERT_EQ(a.subject, b.subject) << label << " @" << i;
    ASSERT_EQ(a.op, b.op) << label << " @" << i;
    ASSERT_EQ(a.obj_net, b.obj_net) << label << " @" << i;
    ASSERT_EQ(a.amount, b.amount) << label << " @" << i;
  }
}

constexpr char kExfilQuery[] =
    "proc p[\"%evil.exe\"] write ip i as e return p, i";
constexpr char kSumQuery[] =
    "proc p write ip i as e #time(1 min) "
    "state ss { amt := sum(e.amount) } group by p "
    "alert ss.amt > 0 return p, ss.amt";

/// Runs the two standing queries over `events` at `shards` lanes —
/// pushed in chunks with the watermark advanced between them — and
/// returns the rendered alerts, sorted. (Sorted because the comparison
/// contract is multiset equality: a single-shard session emits match
/// alerts inline during Push, sharded sessions release them in global
/// (ts, query, group) order — same alerts, different interleaving.)
std::vector<std::string> AlertsFor(const EventBatch& events, size_t shards) {
  SaqlEngine::Options opts;
  opts.num_shards = shards;
  SaqlEngine engine(opts);
  EXPECT_TRUE(engine.AddQuery(kExfilQuery, "exfil").ok());
  EXPECT_TRUE(engine.AddQuery(kSumQuery, "sum").ok());
  auto session = engine.OpenSession();
  EXPECT_TRUE(session.ok()) << session.status();
  EventBatch copy = events;  // Push annotates in place
  for (size_t off = 0; off < copy.size(); off += 257) {
    size_t len = std::min<size_t>(257, copy.size() - off);
    EXPECT_TRUE((*session)->Push(copy.data() + off, len).ok());
    EXPECT_TRUE(
        (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  }
  EXPECT_TRUE((*session)->Close().ok());
  std::vector<std::string> out;
  out.reserve(engine.alerts().size());
  for (const Alert& a : engine.alerts()) out.push_back(a.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

/// Probe: WAL bytes (header + records) for the first `count` events —
/// measured on a scratch backend so crash thresholds can target exact
/// record boundaries on the backend under test.
uint64_t WalBytesFor(const EventBatch& events, size_t count,
                     const std::string& dir) {
  FaultInjectionFileBackend probe_fs;
  WalWriter probe(dir + "/probe.walbytes", 1, &probe_fs);
  for (size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(probe.Append(i + 1, events[i]).ok());
  }
  return probe_fs.bytes_appended();
}

/// Probe: total columnar-file bytes for the whole corpus at
/// `segment_events` (header + every segment, final partial flushed).
uint64_t ColumnarBytesFor(const EventBatch& events, size_t segment_events,
                          const std::string& dir) {
  FaultInjectionFileBackend probe_fs;
  ColumnarLogWriter::Options copts;
  copts.segment_events = segment_events;
  copts.backend = &probe_fs;
  ColumnarLogWriter probe(dir + "/probe.colbytes", copts);
  EXPECT_TRUE(probe.AppendBatch(events).ok());
  EXPECT_TRUE(probe.Flush().ok());
  return probe_fs.bytes_appended();
}

struct CrashOutcome {
  uint64_t acked = 0;    ///< Appends that returned OK
  uint64_t durable = 0;  ///< writer-reported durable_seq after the dust
};

/// Appends `corpus` until the scheduled fault kills the pipeline, then
/// closes (which must fail and must leave the WAL files in place).
CrashOutcome WriteUntilCrash(const std::string& path,
                             FaultInjectionFileBackend* fs,
                             DurableLogWriter::Options opts,
                             const EventBatch& corpus) {
  opts.backend = fs;
  DurableLogWriter w(path, opts);
  EXPECT_TRUE(w.status().ok()) << w.status();
  CrashOutcome out;
  for (const Event& e : corpus) {
    if (!w.Append(e).ok()) break;
    ++out.acked;
  }
  w.Close();
  EXPECT_TRUE(fs->crashed()) << path << ": fault never fired";
  EXPECT_FALSE(w.status().ok()) << path;
  out.durable = w.durable_seq();
  return out;
}

// ---------------------------------------------------------------------
// Healthy-path contract.

// A cleanly closed durable log is a pure v2 columnar log under every
// sync policy: identical contents, no WAL files, and recovery on it is
// a no-op (all events from segments, nothing replayed).
TEST(DurableLogTest, CleanCloseLeavesPureColumnarLogUnderEveryPolicy) {
  const EventBatch corpus = Corpus(1500);
  for (const char* policy : {"always", "group:2000:65536", "none"}) {
    std::string dir = TestDir(std::string("durable_clean_") +
                              (policy[0] == 'g' ? "group" : policy));
    std::string path = dir + "/log";
    auto sync = ParseSyncPolicy(policy);
    ASSERT_TRUE(sync.ok()) << policy;

    DurableLogWriter::Options opts;
    opts.sync = *sync;
    opts.segment_events = 256;
    {
      DurableLogWriter w(path, opts);
      ASSERT_TRUE(w.status().ok()) << w.status();
      ASSERT_TRUE(w.AppendBatch(corpus).ok()) << policy;
      EXPECT_EQ(w.appended_events(), corpus.size());
      EXPECT_FALSE(WalFilesNextTo(path).empty()) << policy;
      ASSERT_TRUE(w.Close().ok()) << policy;
      EXPECT_EQ(w.durable_seq(), corpus.size()) << policy;
      EXPECT_EQ(w.events_in_segments(), corpus.size()) << policy;
    }
    EXPECT_TRUE(WalFilesNextTo(path).empty()) << policy;

    auto direct = ReadColumnarEventLog(path);
    ASSERT_TRUE(direct.ok()) << policy << ": " << direct.status();
    ASSERT_EQ(direct->size(), corpus.size()) << policy;
    ExpectIsCorpusPrefix(*direct, corpus, policy);

    auto rec = RecoverDurableLog(path);
    ASSERT_TRUE(rec.ok()) << policy << ": " << rec.status();
    EXPECT_EQ(rec->segment_events, corpus.size()) << policy;
    EXPECT_EQ(rec->wal_events, 0u) << policy;
    EXPECT_TRUE(rec->wal_files.empty()) << policy;
  }
}

TEST(DurableLogTest, SyncAlwaysAcksOnlyDurableEvents) {
  std::string path = TestDir("durable_always") + "/log";
  DurableLogWriter::Options opts;
  opts.sync = ParseSyncPolicy("always").value();
  DurableLogWriter w(path, opts);
  ASSERT_TRUE(w.status().ok());
  const EventBatch corpus = Corpus(100);
  for (size_t i = 0; i < corpus.size(); ++i) {
    ASSERT_TRUE(w.Append(corpus[i]).ok());
    // The ack IS the durability barrier: never a gap.
    EXPECT_EQ(w.durable_seq(), w.appended_events()) << "i=" << i;
  }
  EXPECT_TRUE(w.Close().ok());
}

TEST(DurableLogTest, RotationSealsAndRetiresCoveredWalFiles) {
  std::string path = TestDir("durable_rotate") + "/log";
  const EventBatch corpus = Corpus(2000);
  DurableLogWriter::Options opts;
  opts.sync = ParseSyncPolicy("group").value();
  opts.segment_events = 128;
  opts.wal_rotate_bytes = 8 * 1024;
  DurableLogWriter w(path, opts);
  ASSERT_TRUE(w.status().ok());
  ASSERT_TRUE(w.AppendBatch(corpus).ok());
  EXPECT_GE(w.wal_rotations(), 2u);
  ASSERT_TRUE(w.Close().ok());
  // Every WAL file — sealed or live — is spent after a clean close.
  EXPECT_TRUE(WalFilesNextTo(path).empty());
  auto rec = RecoverDurableLog(path);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_EQ(rec->events.size(), corpus.size());
  ExpectIsCorpusPrefix(rec->events, corpus, "rotate");
}

// Stale-WAL hygiene: a record path with leftover `.wal.<N>` files is the
// unrecovered tail of a crashed incarnation. Opening a fresh writer over
// it must refuse (the fresh columnar truncate + new WAL sequence would
// silently discard that tail) unless cleanup is forced explicitly.
TEST(DurableLogTest, StaleWalFilesRefuseOpenUnlessForced) {
  std::string path = TestDir("durable_stale_wal") + "/log";
  const EventBatch corpus = Corpus(300);

  // Leave a crashed incarnation behind: sync=always acks everything into
  // the WAL, the pre-segment crash kills the pipeline before segments
  // exist, Close fails and keeps the WAL files.
  FaultInjectionFileBackend fs;
  fs.CrashAtTripPoint(durable_trip::kPreSegment, 1);
  DurableLogWriter::Options opts;
  opts.sync = ParseSyncPolicy("always").value();
  WriteUntilCrash(path, &fs, opts, corpus);
  ASSERT_FALSE(WalFilesNextTo(path).empty());

  // A fresh writer refuses the path.
  DurableLogWriter::Options fresh;
  fresh.sync = ParseSyncPolicy("always").value();
  {
    DurableLogWriter refused(path, fresh);
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_TRUE(refused.Append(corpus[0]).ok() == false);
  }
  // Refusing must not have disturbed the crash evidence: the stale WAL
  // files are still there and still recover the acked prefix.
  ASSERT_FALSE(WalFilesNextTo(path).empty());
  auto rec = RecoverDurableLog(path);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ExpectIsCorpusPrefix(rec->events, corpus, "stale-wal-refused");

  // Forcing cleans the stale files up (explicit data loss) and opens a
  // fresh, fully functional log.
  fresh.force_stale_wal = true;
  {
    DurableLogWriter forced(path, fresh);
    ASSERT_TRUE(forced.status().ok()) << forced.status();
    ASSERT_TRUE(forced.Append(corpus[0]).ok());
    ASSERT_TRUE(forced.Close().ok());
  }
  EXPECT_TRUE(WalFilesNextTo(path).empty());
  auto rec2 = RecoverDurableLog(path);
  ASSERT_TRUE(rec2.ok()) << rec2.status();
  ASSERT_EQ(rec2->events.size(), 1u);
}

// The session layer surfaces the stale-WAL refusal as a degraded
// recording (the session still opens and serves queries), and
// `record_force` opts into the cleanup.
TEST(DurableSessionTest, StaleWalDegradesRecordingUnlessForced) {
  std::string path = TestDir("durable_stale_session") + "/log";
  const EventBatch corpus = Corpus(200);
  FaultInjectionFileBackend fs;
  fs.CrashAtTripPoint(durable_trip::kPreSegment, 1);
  DurableLogWriter::Options wopts;
  wopts.sync = ParseSyncPolicy("always").value();
  WriteUntilCrash(path, &fs, wopts, corpus);
  ASSERT_FALSE(WalFilesNextTo(path).empty());

  SaqlEngine::Options opts;
  opts.record_path = path;
  {
    SaqlEngine engine(opts);
    ASSERT_TRUE(engine.AddQuery(kExfilQuery, "exfil").ok());
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    EXPECT_EQ((*session)->recording_status().code(),
              StatusCode::kFailedPrecondition);
    // Queries still served while recording is refused.
    EventBatch copy = Corpus(40);
    ASSERT_TRUE((*session)->Push(copy).ok());
    ASSERT_TRUE((*session)->Close().ok());
    EXPECT_FALSE(engine.alerts().empty());
  }
  ASSERT_FALSE(WalFilesNextTo(path).empty());  // evidence untouched

  opts.record_force = true;
  {
    SaqlEngine engine(opts);
    ASSERT_TRUE(engine.AddQuery(kExfilQuery, "exfil").ok());
    auto session = engine.OpenSession();
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE((*session)->recording_status().ok());
    EventBatch copy = Corpus(40);
    ASSERT_TRUE((*session)->Push(copy).ok());
    ASSERT_TRUE((*session)->Close().ok());
    EXPECT_TRUE((*session)->recording_status().ok());
  }
  EXPECT_TRUE(WalFilesNextTo(path).empty());
  auto rec = RecoverDurableLog(path);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->events.size(), 40u);
}

// ---------------------------------------------------------------------
// The crash matrix (tentpole acceptance): kill the pipeline at every
// trip point under sync=always, recover, and check both halves of the
// contract — no acked event lost, and the recovered stream replays
// through the engine (1/2/4 shards) exactly like an uncrashed run over
// the same prefix.

struct CrashCase {
  std::string name;
  std::function<void(FaultInjectionFileBackend&)> schedule;
  uint64_t wal_rotate_bytes;
  size_t segment_events;
};

TEST(DurableRecoveryTest, CrashMatrixRecoversAckedPrefixAtEveryTripPoint) {
  const EventBatch corpus = Corpus(4000);
  std::string probe_dir = TestDir("durable_matrix_probe");
  // Byte offsets for the byte-precise cases: torn mid-WAL-record (7
  // bytes into record 51) and torn mid-columnar-segment (half the total
  // columnar size — large enough that no 4 KiB-rotated WAL file can
  // reach it first, asserted below).
  const uint64_t torn_wal_at = WalBytesFor(corpus, 50, probe_dir) + 7;
  const uint64_t columnar_bytes = ColumnarBytesFor(corpus, 256, probe_dir);
  ASSERT_GT(columnar_bytes / 2, uint64_t{12 * 1024});

  const std::vector<CrashCase> cases = {
      {"mid-wal-record",
       [&](FaultInjectionFileBackend& fs) {
         fs.CrashAfterBytes(".wal.0", torn_wal_at);
       },
       4u << 20, 256},
      {"pre-segment",
       [](FaultInjectionFileBackend& fs) {
         fs.CrashAtTripPoint(durable_trip::kPreSegment, 3);
       },
       32 * 1024, 256},
      {"mid-segment",
       [&](FaultInjectionFileBackend& fs) {
         fs.CrashAfterBytes("/log", columnar_bytes / 2 + 3);
       },
       4 * 1024, 256},
      {"pre-wal-delete",
       [](FaultInjectionFileBackend& fs) {
         fs.CrashAtTripPoint(durable_trip::kPreWalDelete, 1);
       },
       8 * 1024, 128},
      {"wal-rotate",
       [](FaultInjectionFileBackend& fs) {
         fs.CrashAtTripPoint(durable_trip::kWalRotate, 2);
       },
       8 * 1024, 128},
  };

  for (const CrashCase& c : cases) {
    SCOPED_TRACE(c.name);
    std::string path = TestDir("durable_matrix_" + c.name) + "/log";
    FaultInjectionFileBackend fs;
    c.schedule(fs);

    DurableLogWriter::Options opts;
    opts.sync = ParseSyncPolicy("always").value();
    opts.segment_events = c.segment_events;
    opts.wal_rotate_bytes = c.wal_rotate_bytes;
    opts.queue_capacity = 128;  // force real writer/drainer interleaving
    CrashOutcome crash = WriteUntilCrash(path, &fs, opts, corpus);
    ASSERT_GT(crash.acked, 0u);
    ASSERT_LT(crash.acked, corpus.size());

    // Recovery runs against the real filesystem — exactly what a
    // restarted process would see.
    auto rec = RecoverDurableLog(path);
    ASSERT_TRUE(rec.ok()) << rec.status();
    ExpectIsCorpusPrefix(rec->events, corpus, c.name);

    // sync=always: every acked event survives. (One synced-but-unacked
    // record may survive too — an append whose ack was lost to the
    // crash after its barrier, the classic commit-ack race.)
    EXPECT_GE(rec->events.size(), crash.acked);
    EXPECT_LE(rec->events.size(), crash.acked + 1);
    EXPECT_GE(rec->events.size(), crash.durable);

    // Differential replay: the recovered stream must be
    // indistinguishable from the never-crashed prefix, at every shard
    // count.
    EventBatch prefix(corpus.begin(),
                      corpus.begin() + static_cast<long>(rec->events.size()));
    const std::vector<std::string> want = AlertsFor(prefix, 1);
    EXPECT_FALSE(want.empty());
    for (size_t shards : {1u, 2u, 4u}) {
      EXPECT_EQ(AlertsFor(rec->events, shards), want)
          << c.name << " shards=" << shards;
    }
  }
}

// Under group commit the crash-loss bound is the open commit window:
// everything past the last barrier may vanish, nothing durable may.
TEST(DurableRecoveryTest, GroupCommitLossIsBoundedToTheOpenWindow) {
  const EventBatch corpus = Corpus(3000);
  std::string path = TestDir("durable_group_loss") + "/log";
  FaultInjectionFileBackend fs;
  fs.CrashAtTripPoint(durable_trip::kPreSegment, 2);

  DurableLogWriter::Options opts;
  // A barrier that never fires on its own: 10 s delay, 1 GiB window —
  // the only durability is the drainer's segment fsyncs.
  opts.sync = ParseSyncPolicy("group:10000000:1073741824").value();
  opts.segment_events = 256;
  opts.queue_capacity = 128;
  CrashOutcome crash = WriteUntilCrash(path, &fs, opts, corpus);
  ASSERT_GT(crash.acked, 0u);

  auto rec = RecoverDurableLog(path);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ExpectIsCorpusPrefix(rec->events, corpus, "group-loss");
  EXPECT_GE(rec->events.size(), crash.durable);  // durable means durable
  EXPECT_LE(rec->events.size(), crash.acked);    // loss, but only unsynced
}

// CompactRecoveredLog turns a crashed log back into a normal replayable
// artifact: pure v2, WAL files gone, recovery now a no-op.
TEST(DurableRecoveryTest, CompactionRewritesCrashedLogAsPureColumnar) {
  const EventBatch corpus = Corpus(2000);
  std::string path = TestDir("durable_compact") + "/log";
  FaultInjectionFileBackend fs;
  fs.CrashAtTripPoint(durable_trip::kPreSegment, 2);
  DurableLogWriter::Options opts;
  opts.sync = ParseSyncPolicy("always").value();
  opts.segment_events = 128;
  opts.queue_capacity = 64;
  CrashOutcome crash = WriteUntilCrash(path, &fs, opts, corpus);

  auto rec = CompactRecoveredLog(path);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_GE(rec->events.size(), crash.acked);
  EXPECT_GT(rec->wal_events, 0u);  // the WAL tail did some work here
  EXPECT_TRUE(WalFilesNextTo(path).empty());

  auto direct = ReadColumnarEventLog(path);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_EQ(direct->size(), rec->events.size());
  ExpectIsCorpusPrefix(*direct, corpus, "compacted");

  auto again = RecoverDurableLog(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->segment_events, rec->events.size());
  EXPECT_EQ(again->wal_events, 0u);
}

// ---------------------------------------------------------------------
// Engine wiring: a recording session persists what it serves, and a
// recording *failure* costs the recording, never the queries.

TEST(DurableSessionTest, RecordingSessionPersistsPushedEvents) {
  const EventBatch corpus = Corpus(1200);
  std::string path = TestDir("session_record") + "/log";
  SaqlEngine::Options opts;
  opts.record_path = path;
  opts.record_sync = ParseSyncPolicy("group").value();
  SaqlEngine engine(opts);
  ASSERT_TRUE(engine.AddQuery(kExfilQuery, "exfil").ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();
  EventBatch copy = corpus;
  ASSERT_TRUE((*session)->Push(copy).ok());
  EXPECT_TRUE((*session)->recording_status().ok());
  EXPECT_EQ((*session)->recorded_events(), corpus.size());
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_EQ((*session)->durable_events(), corpus.size());

  // The recording is the stream: replayable, field-identical.
  auto direct = ReadColumnarEventLog(path);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_EQ(direct->size(), corpus.size());
  ExpectIsCorpusPrefix(*direct, corpus, "session-record");
  EXPECT_TRUE(WalFilesNextTo(path).empty());
}

TEST(DurableSessionTest, RecordingFailureDegradesGracefully) {
  const EventBatch corpus = Corpus(2000);
  const std::vector<std::string> want = AlertsFor(corpus, 1);
  ASSERT_FALSE(want.empty());

  FaultInjectionFileBackend fs;
  fs.FailAppendsAfterBytes(16 * 1024);  // the disk fills mid-stream
  SaqlEngine::Options opts;
  opts.record_path = TestDir("session_degrade") + "/log";
  opts.record_sync = ParseSyncPolicy("always").value();
  opts.file_backend = &fs;
  SaqlEngine engine(opts);
  ASSERT_TRUE(engine.AddQuery(kExfilQuery, "exfil").ok());
  ASSERT_TRUE(engine.AddQuery(kSumQuery, "sum").ok());
  auto session = engine.OpenSession();
  ASSERT_TRUE(session.ok()) << session.status();

  EventBatch copy = corpus;
  for (size_t off = 0; off < copy.size(); off += 257) {
    size_t len = std::min<size_t>(257, copy.size() - off);
    // Push never fails on a recording error — the session degrades.
    ASSERT_TRUE((*session)->Push(copy.data() + off, len).ok());
    ASSERT_TRUE(
        (*session)->AdvanceWatermark((*session)->max_event_ts()).ok());
  }
  EXPECT_EQ((*session)->recording_status().code(), StatusCode::kIoError);
  EXPECT_LT((*session)->recorded_events(), corpus.size());
  ASSERT_TRUE((*session)->Close().ok());

  // Queries never noticed: the full alert sequence, as if recording
  // were off.
  std::vector<std::string> got;
  got.reserve(engine.alerts().size());
  for (const Alert& a : engine.alerts()) got.push_back(a.ToString());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace saql
