// Dataflow-pass tests (SA040 cross-type, SA041 unused variables, SA042
// unread state fields, SA043 constant folding), static-type inference
// checks, and the golden-span suite: every diagnostic code SA001–SA051
// pins the exact SourceSpan it anchors to, so span regressions (an
// analyzer refactor moving a diagnostic off its source text) fail loudly.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dataflow.h"
#include "analysis/fleet_analysis.h"
#include "analysis/query_analysis.h"
#include "parser/analyzer.h"
#include "test_util.h"

namespace saql {
namespace {

using testing::CompileQuery;

std::vector<Diagnostic> Lint(const std::string& text) {
  auto q = CompileQuery(text, "dataflow_target");
  if (q == nullptr) return {};
  return QueryAnalysis::Lint(*q);
}

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string Render(const std::vector<Diagnostic>& diags) {
  return RenderDiagnostics(diags, "  ");
}

void ExpectSpan(const Diagnostic& d, int bl, int bc, int el, int ec) {
  EXPECT_EQ(d.span.begin.line, bl) << d.ToString();
  EXPECT_EQ(d.span.begin.col, bc) << d.ToString();
  EXPECT_EQ(d.span.end.line, el) << d.ToString();
  EXPECT_EQ(d.span.end.col, ec) << d.ToString();
}

// ---------------------------------------------------------------------------
// SA040: cross-type comparisons and constraints.
// ---------------------------------------------------------------------------

TEST(DataflowTest, SA040OrderedComparisonStringVsNumeric) {
  auto diags = Lint(
      "proc p write ip i as evt\n"
      "alert i.dstip > 5\n"
      "return p");
  const Diagnostic* d = Find(diags, "SA040");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("cross-type comparison"), std::string::npos);
  EXPECT_NE(d->message.find("string vs numeric"), std::string::npos);
}

TEST(DataflowTest, SA040EqualityAcrossTypes) {
  // `==` across kinds is always-false under Value::Equals (only int/float
  // coerce), so the alert can never fire.
  auto diags = Lint(
      "proc p write ip i as evt\n"
      "alert i.dstip == 5\n"
      "return p");
  const Diagnostic* d = Find(diags, "SA040");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(DataflowTest, SA040CrossTypeConstraint) {
  auto diags = Lint("proc p[pid = \"abc\"] write ip as e return p");
  const Diagnostic* d = Find(diags, "SA040");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("cross-type constraint"), std::string::npos);
}

TEST(DataflowTest, SA040NeAcrossTypesIsNotFlagged) {
  // `!=` across kinds is always *true* (Equals → false, negated) — the
  // query can still alert, so the conservative contract forbids an error.
  auto diags = Lint(
      "proc p write ip i as evt\n"
      "alert i.dstip != 5\n"
      "return p");
  EXPECT_EQ(Find(diags, "SA040"), nullptr) << Render(diags);
}

TEST(DataflowTest, SA040SameTypeComparisonsClean) {
  auto diags = Lint(
      "proc p write ip i as evt\n"
      "alert evt.amount > 5 && i.dstip == \"10.0.0.1\"\n"
      "return p");
  EXPECT_EQ(Find(diags, "SA040"), nullptr) << Render(diags);
}

TEST(DataflowTest, SA040StatefulAggregateComparisonClean) {
  auto diags = Lint(
      "proc p write ip as evt\n"
      "#time(10 min)\n"
      "state ss { a := avg(evt.amount) } group by p\n"
      "alert ss[0].a > 10\n"
      "return p");
  EXPECT_EQ(Find(diags, "SA040"), nullptr) << Render(diags);
}

// ---------------------------------------------------------------------------
// SA041: unused pattern variables.
// ---------------------------------------------------------------------------

TEST(DataflowTest, SA041UnusedObjectVariable) {
  auto diags = Lint("proc p write ip i as e\nreturn p");
  const Diagnostic* d = Find(diags, "SA041");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("'i'"), std::string::npos);
}

TEST(DataflowTest, SA041AnonymousEntityIsExempt) {
  auto diags = Lint("proc p write ip as e\nreturn p");
  EXPECT_EQ(Find(diags, "SA041"), nullptr) << Render(diags);
}

TEST(DataflowTest, SA041UnderscorePrefixIsExempt) {
  auto diags = Lint("proc p write ip _scratch as e\nreturn p");
  EXPECT_EQ(Find(diags, "SA041"), nullptr) << Render(diags);
}

TEST(DataflowTest, SA041ConstrainedVariableIsExempt) {
  // A constrained variable filters events even when never referenced.
  auto diags =
      Lint("proc p write ip i[dstip = \"10.0.0.1\"] as e\nreturn p");
  EXPECT_EQ(Find(diags, "SA041"), nullptr) << Render(diags);
}

TEST(DataflowTest, SA041SharedJoinVariableIsExempt) {
  // f joins the two patterns (same entity), which is a use.
  auto diags = Lint(
      "proc p1[\"%a.exe\"] write file f as e1\n"
      "proc p2[\"%b.exe\"] read file f as e2\n"
      "return p1, p2");
  EXPECT_EQ(Find(diags, "SA041"), nullptr) << Render(diags);
}

TEST(DataflowTest, SA041ReferencedVariableIsExempt) {
  auto diags = Lint("proc p write ip i as e\nreturn p, i.dstip");
  EXPECT_EQ(Find(diags, "SA041"), nullptr) << Render(diags);
}

// ---------------------------------------------------------------------------
// SA042: never-read state fields.
// ---------------------------------------------------------------------------

TEST(DataflowTest, SA042UnreadStateField) {
  auto diags = Lint(
      "proc p write ip as evt\n"
      "#time(10 min)\n"
      "state ss {\n"
      "  used := avg(evt.amount)\n"
      "  unused := sum(evt.amount)\n"
      "} group by p\n"
      "alert ss[0].used > 10\n"
      "return p");
  const Diagnostic* d = Find(diags, "SA042");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("'unused'"), std::string::npos);
}

TEST(DataflowTest, SA042FieldReadByReturnIsUsed) {
  auto diags = Lint(
      "proc p write ip as evt\n"
      "#time(10 min)\n"
      "state ss {\n"
      "  a := avg(evt.amount)\n"
      "  b := sum(evt.amount)\n"
      "} group by p\n"
      "alert ss[0].a > 10\n"
      "return p, ss[0].b");
  EXPECT_EQ(Find(diags, "SA042"), nullptr) << Render(diags);
}

TEST(DataflowTest, SA042FieldReadByInvariantIsUsed) {
  auto diags = Lint(
      "proc p1[\"%apache.exe\"] start proc p2 as evt\n"
      "#time(10 s)\n"
      "state ss { set_proc := set(p2.exe_name) } group by p1\n"
      "invariant[10][offline] {\n"
      "  a := empty_set\n"
      "  a = a union ss.set_proc\n"
      "}\n"
      "alert |ss.set_proc diff a| > 0\n"
      "return ss.set_proc");
  EXPECT_EQ(Find(diags, "SA042"), nullptr) << Render(diags);
}

// ---------------------------------------------------------------------------
// SA043: constant-foldable subexpressions.
// ---------------------------------------------------------------------------

TEST(DataflowTest, SA043ConstantSubexpression) {
  auto diags = Lint(
      "proc p write ip as evt\n"
      "#time(10 min)\n"
      "state ss { a := avg(evt.amount) } group by p\n"
      "alert ss[0].a > 2 * 1000\n"
      "return p");
  const Diagnostic* d = Find(diags, "SA043");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kHint);
  EXPECT_NE(d->message.find("2 * 1000"), std::string::npos);
}

TEST(DataflowTest, SA043WhollyConstantAlertIsSA021sDomain) {
  // A fully constant alert already draws SA021; SA043 must not pile on.
  auto diags = Lint(
      "proc p write ip as evt\n"
      "#time(10 min)\n"
      "state ss { a := avg(evt.amount) } group by p\n"
      "alert 2 > 1\n"
      "return p");
  EXPECT_NE(Find(diags, "SA021"), nullptr) << Render(diags);
  EXPECT_EQ(Find(diags, "SA043"), nullptr) << Render(diags);
}

TEST(DataflowTest, SA043NoConstantsClean) {
  auto diags = Lint(
      "proc p write ip as evt\n"
      "#time(10 min)\n"
      "state ss { a := avg(evt.amount) } group by p\n"
      "alert ss[0].a > 10\n"
      "return p");
  EXPECT_EQ(Find(diags, "SA043"), nullptr) << Render(diags);
}

// ---------------------------------------------------------------------------
// Static-type inference.
// ---------------------------------------------------------------------------

TEST(DataflowTest, InferExprTypeOverSchema) {
  auto aq = CompileSaql(
      "proc p write ip i as evt\n"
      "alert evt.amount > 5 && i.dstip == \"10.0.0.1\"\n"
      "return p");
  ASSERT_TRUE(aq.ok());
  const Expr& alert = *(*aq)->query->alert;  // (amount>5) && (dstip=="...")
  EXPECT_EQ(InferExprType(**aq, alert), StaticType::kBool);
  const Expr& cmp_num = *alert.lhs;
  EXPECT_EQ(InferExprType(**aq, *cmp_num.lhs), StaticType::kNumeric);
  const Expr& cmp_str = *alert.rhs;
  EXPECT_EQ(InferExprType(**aq, *cmp_str.lhs), StaticType::kString);
  EXPECT_EQ(std::string(StaticTypeName(StaticType::kNumeric)), "numeric");
  EXPECT_EQ(std::string(StaticTypeName(StaticType::kString)), "string");
}

// ---------------------------------------------------------------------------
// Golden spans: every SA code pins the exact source range it anchors to.
// The inputs mirror the pinned-positive tests; the expected line/col
// values are the contract — moving a diagnostic off its source text is a
// breaking change to every IDE/CI consumer of the --json spans.
// ---------------------------------------------------------------------------

struct GoldenSpanCase {
  const char* code;
  const char* text;
  int begin_line, begin_col, end_line, end_col;
};

TEST(GoldenSpanTest, EveryPerQueryCodePinsItsSpan) {
  const GoldenSpanCase kCases[] = {
      // SA001 anchors the offending entity's constraint list.
      {"SA001",
       "proc p[exe_name = \"a.exe\", exe_name = \"b.exe\"] write ip as e\n"
       "return p",
       1, 8, 1, 46},
      // SA002 anchors the refuted entity pattern.
      {"SA002",
       "subject_exe_name = \"cmd.exe\"\n"
       "proc p[\"%osql.exe\"] write file f[\"%.dmp\"] as e\n"
       "return p",
       2, 8, 2, 19},
      // SA003 anchors the whole dead event pattern.
      {"SA003", "proc p start file f[\"%.tmp\"] as e\nreturn p", 1, 1, 1, 34},
      // SA010 anchors the window spec.
      {"SA010",
       "proc p write ip as evt\n"
       "#time(500 ms)\n"
       "state ss { a := avg(evt.amount) } group by p\n"
       "alert ss[0].a > 10\n"
       "return p",
       2, 1, 2, 14},
      // SA011 anchors the constant aggregate call.
      {"SA011",
       "proc p write ip as evt\n"
       "#time(10 min)\n"
       "state ss { a := avg(100) } group by p\n"
       "alert ss[0].a > 10\n"
       "return p",
       3, 17, 3, 25},
      // SA012 anchors the invariant block header (point span).
      {"SA012",
       "proc p1[\"%apache.exe\"] start proc p2 as evt\n"
       "#time(10 s)\n"
       "state ss { set_proc := set(p2.exe_name) }\n"
       "invariant[10][offline] {\n"
       "  a := empty_set\n"
       "  a = a union ss.set_proc\n"
       "}\n"
       "alert |ss.set_proc diff a| > 0\n"
       "return ss.set_proc",
       4, 1, 4, 1},
      // SA020 anchors the redundant constraint.
      {"SA020", "proc p[\"%\"] write ip as e\nreturn p", 1, 8, 1, 11},
      // SA021 anchors the constant alert expression.
      {"SA021",
       "proc p write ip as evt\n"
       "#time(10 min)\n"
       "state ss { a := avg(evt.amount) } group by p\n"
       "alert 2 > 1\n"
       "return p",
       4, 7, 4, 12},
      // SA030 anchors the first event pattern.
      {"SA030", "proc p write ip as e\nreturn p", 1, 1, 1, 21},
      // SA031 anchors the first event pattern of the join.
      {"SA031",
       "proc p1[\"%x.exe\"] write file f1[\"%.log\"] as e1\n"
       "proc p1 read ip as e2\n"
       "with e1 -> e2\n"
       "return distinct p1",
       1, 1, 1, 47},
      // SA040 (expression form) anchors the comparison node.
      {"SA040",
       "proc p write ip i as evt\n"
       "alert i.dstip > 5\n"
       "return p",
       2, 7, 2, 18},
      // SA041 anchors the unused entity pattern.
      {"SA041", "proc p write ip i as e\nreturn p", 1, 14, 1, 18},
      // SA042 anchors the state field definition.
      {"SA042",
       "proc p write ip as evt\n"
       "#time(10 min)\n"
       "state ss {\n"
       "  used := avg(evt.amount)\n"
       "  unused := sum(evt.amount)\n"
       "} group by p\n"
       "alert ss[0].used > 10\n"
       "return p",
       5, 3, 5, 28},
      // SA043 anchors the foldable subtree.
      {"SA043",
       "proc p write ip as evt\n"
       "#time(10 min)\n"
       "state ss { a := avg(evt.amount) } group by p\n"
       "alert ss[0].a > 2 * 1000\n"
       "return p",
       4, 17, 4, 25},
  };
  for (const GoldenSpanCase& c : kCases) {
    auto diags = Lint(c.text);
    const Diagnostic* d = Find(diags, c.code);
    ASSERT_NE(d, nullptr) << c.code << "\n" << c.text << "\n" << Render(diags);
    ExpectSpan(*d, c.begin_line, c.begin_col, c.end_line, c.end_col);
  }
}

TEST(GoldenSpanTest, SA040ConstraintFormPinsItsSpan) {
  auto diags = Lint("proc p[pid = \"abc\"] write ip as e return p");
  const Diagnostic* d = Find(diags, "SA040");
  ASSERT_NE(d, nullptr) << Render(diags);
  ExpectSpan(*d, 1, 8, 1, 19);
}

TEST(GoldenSpanTest, SA050PinsItsSpan) {
  auto a = CompileSaql(
      "proc pa[\"%evil.exe\"] write file fa[path = \"%drop.dll\"] as ea\n"
      "return pa, fa");
  auto b = CompileSaql(
      "proc pb[\"%EVIL.EXE\"] write file fb[name = \"%drop.dll\"] as eb\n"
      "return pb, fb");
  ASSERT_TRUE(a.ok() && b.ok());
  auto diags = FleetAnalysis::CheckQuery(**b, {{"first", *a}});
  const Diagnostic* d = Find(diags, "SA050");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  // Anchors the incoming query's first event pattern.
  ExpectSpan(*d, 1, 1, 1, 61);
}

TEST(GoldenSpanTest, SA051PinsItsSpan) {
  auto tight = CompileSaql(
      "proc p[\"%cmd.exe\"] write file f[path = \"/tmp/%\"] as e\n"
      "return p, f");
  auto wide = CompileSaql("proc p write file f as e\nreturn p, f");
  ASSERT_TRUE(tight.ok() && wide.ok());
  auto diags = FleetAnalysis::CheckQuery(**wide, {{"tight", *tight}});
  const Diagnostic* d = Find(diags, "SA051");
  ASSERT_NE(d, nullptr) << Render(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  ExpectSpan(*d, 1, 1, 1, 25);
}

}  // namespace
}  // namespace saql
